"""Unit tests for maximum Triangle K-Core extraction."""

import pytest

from repro.core import (
    dense_communities,
    is_triangle_kcore,
    level_subgraph,
    max_core_of_edge,
    triangle_connected_component,
    triangle_connected_components,
    triangle_kcore_decomposition,
    vertex_set_of_edges,
)
from repro.graph import Graph, complete_graph, erdos_renyi


class TestLevelSubgraph:
    def test_is_triangle_kcore_at_level(self):
        g = erdos_renyi(40, 0.25, seed=1)
        result = triangle_kcore_decomposition(g)
        for k in range(1, result.max_kappa + 1):
            sub = level_subgraph(g, result, k)
            assert is_triangle_kcore(sub, k), k

    def test_level_zero_is_whole_edge_set(self, fig2_graph):
        result = triangle_kcore_decomposition(fig2_graph)
        sub = level_subgraph(fig2_graph, result, 0)
        assert set(sub.edges()) == set(fig2_graph.edges())

    def test_level_above_max_is_empty(self, k5):
        result = triangle_kcore_decomposition(k5)
        assert level_subgraph(k5, result, 4).num_edges == 0


class TestIsTriangleKCore:
    def test_clique(self):
        assert is_triangle_kcore(complete_graph(5), 3)
        assert not is_triangle_kcore(complete_graph(5), 4)

    def test_zero_always_true(self):
        assert is_triangle_kcore(Graph(edges=[(1, 2)]), 0)


class TestMaxCoreOfEdge:
    def test_fig2_edge_ab(self, fig2_graph):
        """AB's maximum core (kappa=1) is the whole graph per Claim 2."""
        result = triangle_kcore_decomposition(fig2_graph)
        core = max_core_of_edge(fig2_graph, result, "A", "B", connected=False)
        assert set(core.edges()) == set(fig2_graph.edges())

    def test_fig2_edge_bc_connected(self, fig2_graph):
        """BC at kappa=2 lives in the K4 {B,C,D,E}."""
        result = triangle_kcore_decomposition(fig2_graph)
        core = max_core_of_edge(fig2_graph, result, "B", "C")
        assert set(core.vertices()) == {"B", "C", "D", "E"}
        assert core.num_edges == 6

    def test_core_contains_edge_and_is_valid(self):
        g = erdos_renyi(40, 0.25, seed=2)
        result = triangle_kcore_decomposition(g)
        for u, v in list(g.edges())[:20]:
            k = result.kappa_of(u, v)
            core = max_core_of_edge(g, result, u, v)
            assert core.has_edge(u, v)
            if k > 0:
                assert is_triangle_kcore(core, k), (u, v, k)


class TestTriangleConnectivity:
    def test_two_cliques_sharing_vertex_are_separate(
        self, two_cliques_sharing_vertex
    ):
        g = two_cliques_sharing_vertex
        result = triangle_kcore_decomposition(g)
        components = triangle_connected_components(g, result, 2)
        assert len(components) == 2
        sizes = sorted(len(c) for c in components)
        assert sizes == [6, 6]

    def test_component_of_low_kappa_start_is_empty(self, fig2_graph):
        result = triangle_kcore_decomposition(fig2_graph)
        assert (
            triangle_connected_component(fig2_graph, result, ("A", "B"), 2) == set()
        )

    def test_components_partition_level_edges(self):
        g = erdos_renyi(40, 0.3, seed=3)
        result = triangle_kcore_decomposition(g)
        for k in range(1, result.max_kappa + 1):
            components = triangle_connected_components(g, result, k)
            level_edges = set(result.edges_with_kappa_at_least(k))
            combined = set()
            for component in components:
                assert not (combined & component), "components overlap"
                combined |= component
            assert combined == level_edges


class TestDenseCommunities:
    def test_densest_first(self):
        g = complete_graph(6)
        for u in (100, 101, 102, 103):
            for v in (100, 101, 102, 103):
                if u < v:
                    g.add_edge(u, v)
        result = triangle_kcore_decomposition(g)
        communities = list(dense_communities(g, result))
        assert communities[0][0] == 4  # K6 first
        assert communities[0][1] == set(range(6))
        assert communities[1][0] == 2  # K4 second
        assert communities[1][1] == {100, 101, 102, 103}

    def test_nested_communities_deduplicated(self, k5):
        result = triangle_kcore_decomposition(k5)
        communities = list(dense_communities(k5, result))
        assert len(communities) == 1

    def test_vertex_set_of_edges(self):
        assert vertex_set_of_edges({(1, 2), (2, 3)}) == {1, 2, 3}
