"""Unit tests for the classic vertex K-Core decomposition."""

import pytest

from repro.core import (
    core_filter_for_triangle_kcore,
    degeneracy,
    kcore_decomposition,
    kcore_subgraph,
    triangle_kcore_decomposition,
)
from repro.graph import Graph, complete_graph, erdos_renyi


class TestKCoreDecomposition:
    def test_clique(self):
        core = kcore_decomposition(complete_graph(5))
        assert all(value == 4 for value in core.values())

    def test_path(self):
        g = Graph(edges=[(0, 1), (1, 2), (2, 3)])
        core = kcore_decomposition(g)
        assert all(value == 1 for value in core.values())

    def test_isolated_vertex(self):
        g = Graph(vertices=[1])
        assert kcore_decomposition(g) == {1: 0}

    def test_paper_fig1a_structure(self):
        """A 5-vertex 2-core built with minimal edges: a 5-cycle."""
        g = Graph(edges=[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)])
        core = kcore_decomposition(g)
        assert all(value == 2 for value in core.values())
        # Minimal 2-core has no triangles: its Triangle K-Core numbers are 0
        # (the paper's Figure 1 point: K-Core is a weak clique proxy).
        tkc = triangle_kcore_decomposition(g)
        assert all(value == 0 for value in tkc.kappa.values())

    def test_against_networkx(self):
        import networkx as nx

        from repro.graph.convert import to_networkx

        g = erdos_renyi(60, 0.15, seed=8)
        ours = kcore_decomposition(g)
        theirs = nx.core_number(to_networkx(g))
        assert ours == dict(theirs)

    def test_hub_and_spokes(self):
        g = Graph(edges=[(0, i) for i in range(1, 8)])
        core = kcore_decomposition(g)
        assert core[0] == 1
        assert all(core[i] == 1 for i in range(1, 8))


class TestKCoreSubgraph:
    def test_subgraph_min_degree(self):
        g = erdos_renyi(50, 0.15, seed=3)
        sub = kcore_subgraph(g, 3)
        for v in sub.vertices():
            assert sub.degree(v) >= 3

    def test_subgraph_maximality(self):
        g = erdos_renyi(50, 0.15, seed=3)
        core = kcore_decomposition(g)
        sub = kcore_subgraph(g, 2)
        assert set(sub.vertices()) == {v for v, c in core.items() if c >= 2}

    def test_empty_when_k_too_large(self, k5):
        assert kcore_subgraph(k5, 5).num_vertices == 0


class TestDegeneracy:
    def test_clique(self):
        assert degeneracy(complete_graph(6)) == 5

    def test_empty(self):
        assert degeneracy(Graph()) == 0

    def test_forest(self):
        g = Graph(edges=[(0, 1), (1, 2), (1, 3)])
        assert degeneracy(g) == 1


class TestCoreFilter:
    def test_preserves_triangle_kcores(self):
        """Filtering to the (k+1)-core must keep every kappa >= k edge."""
        g = erdos_renyi(60, 0.2, seed=11)
        result = triangle_kcore_decomposition(g)
        for k in range(1, result.max_kappa + 1):
            filtered = core_filter_for_triangle_kcore(g, k)
            for edge in result.edges_with_kappa_at_least(k):
                u, v = edge
                assert filtered.has_edge(u, v), (k, edge)

    def test_rejects_negative_k(self, k5):
        with pytest.raises(ValueError):
            core_filter_for_triangle_kcore(k5, -1)
