"""Unit tests for the process-parallel backend (repro.fast.parallel).

Covers the pool edge cases the conformance matrix cannot see from the
outside: the workers=1 short-circuit (no pool may be constructed), empty
and unsplittable graphs, worker crashes surfacing as BackendError instead
of hangs, shard-range arithmetic (including the hypothesis tiling
property and the overlap guard), deterministic stats counters, the
stats/5 schema, and the Engine.map_decompose batch API.
"""

from __future__ import annotations

from types import SimpleNamespace

import pytest

from repro.engine import Engine, EngineStats, STATS_SCHEMA
from repro.exceptions import BackendError, ReproError
from repro.fast import (
    AUTO_PARALLEL_MIN_EDGES,
    CSRGraph,
    csr_decomposition,
    effective_workers,
    inject_shard_merge_bug,
    parallel_decomposition,
    resolve_backend,
    shard_ranges,
)
from repro.fast import parallel as parallel_mod
from repro.fast import csr as csr_mod
from repro.graph import Graph, complete_graph, erdos_renyi

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - hypothesis is a dev dependency
    HAVE_HYPOTHESIS = False

HAS_NUMPY = csr_mod.np is not None


def er(seed: int = 0, n: int = 60, p: float = 0.15) -> Graph:
    return erdos_renyi(n, p, seed=seed)


# ------------------------------------------------------------------ #
# bit-identity with the csr backend
# ------------------------------------------------------------------ #


class TestBitIdentity:
    @pytest.mark.parametrize("workers", [2, 3, 5, 16])
    def test_inprocess_matches_csr_exactly(self, workers):
        graph = er(seed=workers)
        expected = csr_decomposition(graph)
        result = parallel_decomposition(graph, workers=workers, inprocess=True)
        assert result.kappa == expected.kappa
        assert result.processing_order == expected.processing_order

    def test_real_pool_matches_csr_exactly(self):
        graph = er(seed=1)
        expected = csr_decomposition(graph)
        result = parallel_decomposition(graph, workers=2)
        assert result.kappa == expected.kappa
        assert result.processing_order == expected.processing_order

    def test_counters_identical_to_csr(self):
        graph = er(seed=2)
        csr_counters: dict = {}
        par_counters: dict = {}
        csr_decomposition(graph, counters=csr_counters)
        parallel_decomposition(
            graph, workers=3, inprocess=True, counters=par_counters
        )
        assert par_counters == csr_counters

    def test_counters_deterministic_across_runs(self):
        graph = er(seed=3)
        runs = []
        for _ in range(2):
            counters: dict = {}
            info: dict = {}
            parallel_decomposition(
                graph, workers=4, inprocess=True, counters=counters, info=info
            )
            runs.append((counters, info["workers"], info["shards"]))
        assert runs[0] == runs[1]


# ------------------------------------------------------------------ #
# workers=1 short-circuit and degenerate graphs
# ------------------------------------------------------------------ #


class TestShortCircuitAndDegenerates:
    def test_workers_1_never_builds_a_pool(self, monkeypatch):
        def explode(*args, **kwargs):
            raise AssertionError("workers=1 must not reach the pool path")

        monkeypatch.setattr(parallel_mod, "_run_pool", explode)
        graph = er(seed=4)
        result = parallel_decomposition(graph, workers=1)
        assert result.kappa == csr_decomposition(graph).kappa

    def test_workers_1_info_reports_single_shard(self):
        info: dict = {}
        parallel_decomposition(er(seed=5), workers=1, info=info)
        assert info == {
            "workers": 1,
            "shards": 1,
            "shard_seconds": [],
            "transport": "inprocess",
            "bytes_shipped": 0,
        }

    def test_single_shard_graph_skips_pool(self, monkeypatch):
        def explode(*args, **kwargs):
            raise AssertionError("single-shard graphs must stay in process")

        monkeypatch.setattr(parallel_mod, "_run_pool", explode)
        # Vertices but zero arcs: shard_ranges collapses to a single range.
        graph = Graph(vertices=range(5))
        result = parallel_decomposition(graph, workers=8)
        assert result.kappa == {}
        # A small graph *with* edges is still allowed to pool (two shards
        # exist as soon as two vertices have arcs) — just check the tiny
        # pool run agrees with csr.
        monkeypatch.undo()
        graph = Graph(edges=[(0, 1)])
        assert parallel_decomposition(graph, workers=8).kappa == {(0, 1): 0}

    def test_empty_graph(self):
        result = parallel_decomposition(Graph(), workers=4)
        assert result.kappa == {}
        assert result.processing_order == []

    def test_vertices_without_edges(self):
        graph = Graph(vertices=range(10))
        result = parallel_decomposition(graph, workers=4)
        assert result.kappa == {}

    def test_triangle_free_graph(self):
        # Star: plenty of edges, zero triangles, hub in the last shard.
        graph = Graph(edges=[(0, i) for i in range(1, 40)])
        result = parallel_decomposition(graph, workers=4, inprocess=True)
        assert set(result.kappa.values()) == {0}

    def test_effective_workers_validation(self):
        assert effective_workers(1) == 1
        assert effective_workers(7) == 7
        assert effective_workers(None) >= 1
        with pytest.raises(ValueError, match="workers must be >= 1"):
            effective_workers(0)
        with pytest.raises(ValueError, match="workers must be >= 1"):
            parallel_decomposition(Graph(), workers=-2)


# ------------------------------------------------------------------ #
# shard ranges
# ------------------------------------------------------------------ #


class TestShardRanges:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("shards", [1, 2, 3, 7, 64])
    def test_partition_properties(self, seed, shards):
        csr = CSRGraph.from_graph(er(seed=seed, n=50, p=0.12))
        ranges = shard_ranges(csr, shards)
        assert 1 <= len(ranges) <= max(shards, 1)
        assert ranges[0][0] == 0
        assert ranges[-1][1] == csr.num_vertices
        for (_, hi), (lo, _) in zip(ranges, ranges[1:]):
            assert hi == lo  # contiguous, non-overlapping
        assert all(lo < hi for lo, hi in ranges)

    def test_empty_graph_yields_no_ranges(self):
        assert shard_ranges(CSRGraph.from_graph(Graph()), 4) == []

    def test_arc_balance_beats_vertex_balance_on_hub_graphs(self):
        # Degree-ordered relabeling puts the hub last; arc-balanced cuts
        # must not leave the whole workload in the final shard.
        graph = Graph(edges=[(0, i) for i in range(1, 101)])
        csr = CSRGraph.from_graph(graph)
        ranges = shard_ranges(csr, 4)
        arcs = [csr.indptr[hi] - csr.indptr[lo] for lo, hi in ranges]
        total = csr.indptr[csr.num_vertices]
        assert max(arcs) < total  # the hub shard does not own everything


if HAVE_HYPOTHESIS:

    class TestShardTilingProperty:
        """Hypothesis: shard_ranges tiles [0, n) for any degree distribution.

        The strategy builds adversarial shapes directly from degree
        sequences — empty vertices, one mega-hub, long paths, duplicate
        degrees — rather than from uniform random graphs, because the
        bisect-based cut placement only gets interesting when the arc
        prefix has plateaus (runs of isolated vertices) and cliffs (hubs).
        """

        @staticmethod
        def _graph_from_stubs(stubs):
            # Half-edge pairing: any even-sum degree-ish sequence becomes
            # some multigraph; collapse to the simple graph it induces.
            edges = []
            flat = [v for v, d in enumerate(stubs) for _ in range(d)]
            for u, v in zip(flat[::2], flat[1::2]):
                if u != v:
                    edges.append((u, v))
            vertices = range(len(stubs))
            return Graph(vertices=vertices, edges=edges)

        @given(
            stubs=st.lists(
                st.integers(min_value=0, max_value=12), min_size=1, max_size=40
            ),
            shards=st.integers(min_value=1, max_value=64),
        )
        @settings(max_examples=150, deadline=None)
        def test_tiles_exactly(self, stubs, shards):
            csr = CSRGraph.from_graph(self._graph_from_stubs(stubs))
            ranges = shard_ranges(csr, shards)
            if csr.num_vertices == 0:
                assert ranges == []
                return
            # Contiguous, disjoint, covering — the exact property the
            # merge guard re-validates at run time.
            assert ranges[0][0] == 0
            assert ranges[-1][1] == csr.num_vertices
            for (_, hi), (lo, _) in zip(ranges, ranges[1:]):
                assert hi == lo
            assert all(lo < hi for lo, hi in ranges)
            parallel_mod._validate_shard_tiling(csr.num_vertices, ranges)

        @given(
            stubs=st.lists(
                st.integers(min_value=0, max_value=8), min_size=3, max_size=30
            ),
            shards=st.integers(min_value=2, max_value=16),
        )
        @settings(max_examples=100, deadline=None)
        def test_merged_supports_match_sequential(self, stubs, shards):
            graph = self._graph_from_stubs(stubs)
            csr = CSRGraph.from_graph(graph)
            from repro.fast import supports_and_triangles

            sequential = supports_and_triangles(csr)
            sharded = parallel_mod.parallel_supports_and_triangles(
                csr, workers=shards, inprocess=True
            )
            assert sharded == sequential


class TestMergeGuard:
    """Overlapping or gapped shard output must refuse to merge."""

    def _outputs(self, csr, shards):
        return [parallel_mod._shard_inprocess(csr, bounds) for bounds in shards]

    def test_overlapping_shards_raise(self):
        csr = CSRGraph.from_graph(er(seed=12, n=20))
        n = csr.num_vertices
        bad = [(0, n // 2 + 1), (n // 2, n)]  # one-vertex overlap
        with pytest.raises(BackendError, match="do not tile"):
            parallel_mod._merge_shards(csr, bad, self._outputs(csr, bad))

    def test_gapped_shards_raise(self):
        csr = CSRGraph.from_graph(er(seed=13, n=20))
        n = csr.num_vertices
        bad = [(0, n // 2 - 1), (n // 2, n)]  # one-vertex gap
        with pytest.raises(BackendError, match="do not tile"):
            parallel_mod._merge_shards(csr, bad, self._outputs(csr, bad))

    def test_missing_tail_raises(self):
        csr = CSRGraph.from_graph(er(seed=14, n=20))
        n = csr.num_vertices
        bad = [(0, n - 1)]
        with pytest.raises(BackendError, match="do not cover"):
            parallel_mod._merge_shards(csr, bad, self._outputs(csr, bad))

    def test_valid_tiling_passes(self):
        csr = CSRGraph.from_graph(er(seed=15, n=20))
        shards = shard_ranges(csr, 3)
        merged, _ = parallel_mod._merge_shards(
            csr, shards, self._outputs(csr, shards)
        )
        from repro.fast import supports_and_triangles

        assert merged == supports_and_triangles(csr)


# ------------------------------------------------------------------ #
# failure contract
# ------------------------------------------------------------------ #


class TestFailureContract:
    def test_worker_crash_raises_backend_error(self, monkeypatch):
        monkeypatch.setenv(parallel_mod._CRASH_ENV, "1")
        graph = er(seed=6)
        with pytest.raises(BackendError, match="worker process died"):
            parallel_decomposition(graph, workers=2)
        # The failure is mechanical, not algorithmic: the same graph still
        # decomposes fine in process.
        monkeypatch.delenv(parallel_mod._CRASH_ENV)
        assert parallel_decomposition(graph, workers=1).kappa == (
            csr_decomposition(graph).kappa
        )

    def test_backend_error_is_repro_error(self):
        assert issubclass(BackendError, ReproError)

    def test_crash_message_names_the_retry_path(self, monkeypatch):
        monkeypatch.setenv(parallel_mod._CRASH_ENV, "1")
        with pytest.raises(BackendError, match="workers=1"):
            parallel_decomposition(er(seed=7), workers=2)

    def test_engine_surfaces_backend_error(self, monkeypatch):
        monkeypatch.setenv(parallel_mod._CRASH_ENV, "1")
        engine = Engine(workers=2, max_cached_graphs=0)
        with pytest.raises(BackendError):
            engine.decompose(er(seed=8), backend="parallel")


# ------------------------------------------------------------------ #
# fault injection (the smoke-check's tooling, tested directly)
# ------------------------------------------------------------------ #


class TestInjectShardMergeBug:
    def test_bug_changes_kappa_on_a_triangle(self):
        graph = Graph(edges=[(0, 1), (1, 2), (0, 2)])
        clean = parallel_decomposition(graph, workers=2, inprocess=True)
        assert set(clean.kappa.values()) == {1}
        with inject_shard_merge_bug():
            buggy = parallel_decomposition(graph, workers=2, inprocess=True)
        assert set(buggy.kappa.values()) == {0}

    def test_bug_applies_even_at_workers_1(self):
        # The short-circuit must not mask the injected fault, or the
        # mutation smoke-check would silently pass on 1-CPU hosts.
        graph = complete_graph(4)
        with inject_shard_merge_bug():
            buggy = parallel_decomposition(graph, workers=1)
        assert buggy.kappa != csr_decomposition(graph).kappa

    def test_bug_scope_is_the_context_only(self):
        graph = complete_graph(4)
        with inject_shard_merge_bug():
            pass
        after = parallel_decomposition(graph, workers=2, inprocess=True)
        assert after.kappa == csr_decomposition(graph).kappa


# ------------------------------------------------------------------ #
# auto-selection policy
# ------------------------------------------------------------------ #


class TestAutoPolicy:
    # Above the parallel threshold "auto" composes the vector executor on
    # top of the sharded enumeration when numpy is present; the scalar
    # composition remains the no-numpy answer.
    def test_auto_escalates_on_big_graph_with_workers(self):
        big = SimpleNamespace(num_edges=AUTO_PARALLEL_MIN_EDGES)
        expected = "parallel-vec" if HAS_NUMPY else "parallel"
        assert resolve_backend("auto", big, workers=2) == expected

    def test_auto_stays_in_process_below_threshold(self):
        mid = SimpleNamespace(num_edges=AUTO_PARALLEL_MIN_EDGES - 1)
        expected = "csr-vec" if HAS_NUMPY else "csr"
        assert resolve_backend("auto", mid, workers=2) == expected

    def test_auto_stays_in_process_at_one_worker(self):
        big = SimpleNamespace(num_edges=AUTO_PARALLEL_MIN_EDGES * 2)
        expected = "csr-vec" if HAS_NUMPY else "csr"
        assert resolve_backend("auto", big, workers=1) == expected

    def test_auto_scalar_composition_without_numpy(self, monkeypatch):
        monkeypatch.setattr(csr_mod, "np", None)
        big = SimpleNamespace(num_edges=AUTO_PARALLEL_MIN_EDGES)
        assert resolve_backend("auto", big, workers=2) == "parallel"
        assert resolve_backend("auto", big, workers=1) == "csr"

    def test_engine_resolve_uses_engine_workers(self):
        big = SimpleNamespace(num_edges=AUTO_PARALLEL_MIN_EDGES)
        parallel_family = ("parallel", "parallel-vec")
        csr_family = ("csr", "csr-vec")
        assert Engine(workers=4).resolve(None, big) in parallel_family
        assert Engine(workers=1).resolve(None, big) in csr_family

    def test_membership_error_contract(self):
        graph = complete_graph(4)
        with pytest.raises(ValueError, match="membership"):
            resolve_backend("parallel", graph, needs_reference=True)


# ------------------------------------------------------------------ #
# engine stats: schema /4
# ------------------------------------------------------------------ #


class TestStatsSchema:
    def test_schema_bumped(self):
        assert STATS_SCHEMA == "repro.engine.stats/6"

    def test_v1_keys_still_present(self):
        # /2 is a strict superset of /1: old readers must keep working.
        payload = EngineStats().as_dict()
        assert {"schema", "counters", "backend_calls", "stage_seconds"} <= (
            set(payload)
        )
        assert "parallel" in payload

    def test_record_parallel_accumulates_and_resets(self):
        stats = EngineStats()
        stats.record_parallel(2, [0.1, 0.2])
        stats.record_parallel(4, [0.3])
        payload = stats.as_dict()["parallel"]
        assert payload["decompositions"] == 2
        assert payload["workers"] == 4  # most recent run
        assert payload["shards"] == 3  # cumulative
        assert payload["shard_seconds"] == [0.3]
        stats.reset()
        assert stats.as_dict()["parallel"] == {}

    def test_engine_records_parallel_section(self):
        engine = Engine(workers=3, max_cached_graphs=0)
        engine.decompose(er(seed=9), backend="parallel")
        payload = engine.stats_dict()
        assert payload["schema"] == "repro.engine.stats/6"
        assert payload["backend_calls"]["parallel"] == 1
        section = payload["parallel"]
        assert section["workers"] == 3
        assert section["decompositions"] == 1
        assert len(section["shard_seconds"]) == section["shards"]
        assert section["transport"] in ("shm", "pickle")
        assert section["bytes_shipped"] > 0

    def test_parallel_section_counters_deterministic(self):
        # Everything except wall times must be identical across runs.
        def snapshot():
            engine = Engine(workers=3, max_cached_graphs=0)
            engine.decompose(er(seed=10), backend="parallel")
            payload = engine.stats_dict()
            section = dict(payload["parallel"])
            section.pop("shard_seconds")
            return payload["counters"], section

        assert snapshot() == snapshot()


# ------------------------------------------------------------------ #
# Engine.map_decompose
# ------------------------------------------------------------------ #


class TestMapDecompose:
    def test_results_in_input_order(self):
        engine = Engine()
        g1, g2 = complete_graph(4), complete_graph(5)
        r1, r2 = engine.map_decompose([g1, g2], backend="csr")
        assert r1.max_kappa == 2
        assert r2.max_kappa == 3

    def test_duplicates_served_from_cache(self):
        engine = Engine()
        graph = er(seed=11)
        results = engine.map_decompose([graph, graph, graph])
        assert results[0] is results[1] is results[2]
        assert engine.stats.cache_hits == 2
        assert engine.stats.counters["batch_calls"] == 1
        assert engine.stats.counters["batch_graphs"] == 3

    def test_parallel_batch_matches_reference(self):
        engine = Engine(max_cached_graphs=0)
        graphs = [er(seed=s, n=40) for s in range(3)]
        results = engine.map_decompose(graphs, backend="parallel", workers=2)
        for graph, result in zip(graphs, results):
            assert result.kappa == csr_decomposition(graph).kappa
        assert engine.stats_dict()["parallel"]["workers"] == 2

    def test_workers_override_is_restored(self):
        engine = Engine(workers=5)
        engine.map_decompose([complete_graph(4)], backend="csr", workers=2)
        assert engine.workers == 5
        # ...even when a backend raises mid-batch.
        with pytest.raises(ValueError):
            engine.map_decompose(
                [complete_graph(4)],
                backend="csr",
                store_membership=True,
                workers=3,
            )
        assert engine.workers == 5

    def test_invalid_workers_rejected(self):
        engine = Engine()
        with pytest.raises(ValueError, match="workers must be >= 1"):
            engine.map_decompose([Graph()], workers=0)
        with pytest.raises(ValueError, match="workers must be >= 1"):
            Engine(workers=0)

    def test_mutation_between_batches_invalidates(self):
        engine = Engine()
        graph = complete_graph(4)
        (first,) = engine.map_decompose([graph])
        graph.add_edge(0, 99)
        graph.add_edge(1, 99)
        (second,) = engine.map_decompose([graph])
        assert second is not first
        assert second.kappa_of(0, 99) == 1
