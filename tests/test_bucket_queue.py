"""Unit tests for the bucket queue."""

import pytest

from repro.core import BucketQueue


class TestBasics:
    def test_build_and_pop_order(self):
        q = BucketQueue({"a": 2, "b": 0, "c": 1})
        assert q.pop_min() == ("b", 0)
        assert q.pop_min() == ("c", 1)
        assert q.pop_min() == ("a", 2)

    def test_len_and_contains(self):
        q = BucketQueue({"a": 1})
        assert len(q) == 1
        assert "a" in q
        q.pop_min()
        assert len(q) == 0
        assert "a" not in q

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            BucketQueue({}).pop_min()

    def test_peek_min(self):
        q = BucketQueue({"a": 3, "b": 5})
        assert q.peek_min_priority() == 3
        q.pop_min()
        assert q.peek_min_priority() == 5

    def test_peek_empty_raises(self):
        with pytest.raises(IndexError):
            BucketQueue({}).peek_min_priority()


class TestMutation:
    def test_decrement(self):
        q = BucketQueue({"a": 5})
        assert q.decrement("a") == 4
        assert q.priority("a") == 4

    def test_decrement_below_floor_still_pops_correctly(self):
        q = BucketQueue({"a": 5, "b": 3})
        q.pop_min()  # floor moves to 3... pops b
        q.set_priority("a", 1)
        assert q.pop_min() == ("a", 1)

    def test_set_priority_same_value_noop(self):
        q = BucketQueue({"a": 2})
        q.set_priority("a", 2)
        assert q.pop_min() == ("a", 2)

    def test_negative_priority_rejected(self):
        q = BucketQueue({"a": 0})
        with pytest.raises(ValueError):
            q.set_priority("a", -1)
        with pytest.raises(ValueError):
            q.insert("b", -2)

    def test_double_insert_rejected(self):
        q = BucketQueue({"a": 1})
        with pytest.raises(ValueError):
            q.insert("a", 2)

    def test_remove(self):
        q = BucketQueue({"a": 1, "b": 2})
        assert q.remove("a") == 1
        assert "a" not in q
        assert q.pop_min() == ("b", 2)

    def test_remove_missing_raises(self):
        with pytest.raises(KeyError):
            BucketQueue({}).remove("x")

    def test_keys(self):
        q = BucketQueue({"a": 1, "b": 2})
        assert set(q.keys()) == {"a", "b"}


class TestFloorAdvancement:
    """Regressions for stale-floor handling after remove / set_priority.

    Emptying the floor bucket must advance the floor eagerly; otherwise
    every later ``peek_min_priority`` rescans the same empty prefix.
    """

    def test_remove_last_floor_key_advances_floor(self):
        q = BucketQueue({"a": 0, "b": 500})
        q.remove("a")
        assert q._floor == 500  # advanced eagerly, not on the next peek
        assert q.peek_min_priority() == 500
        assert q.pop_min() == ("b", 500)

    def test_remove_non_floor_key_keeps_floor(self):
        q = BucketQueue({"a": 0, "b": 5})
        q.remove("b")
        assert q._floor == 0
        assert q.peek_min_priority() == 0

    def test_remove_last_key_leaves_empty_queue_consistent(self):
        q = BucketQueue({"a": 3})
        q.remove("a")
        assert len(q) == 0
        with pytest.raises(IndexError):
            q.peek_min_priority()
        q.insert("b", 1)
        assert q.pop_min() == ("b", 1)

    def test_set_priority_off_floor_advances_floor(self):
        q = BucketQueue({"a": 0, "b": 500})
        q.set_priority("a", 7)
        assert q._floor == 7
        assert q.peek_min_priority() == 7
        assert q.pop_min() == ("a", 7)

    def test_set_priority_below_floor_lowers_floor(self):
        q = BucketQueue({"a": 5, "b": 6})
        q.pop_min()
        q.set_priority("b", 1)
        assert q.peek_min_priority() == 1

    def test_interleaved_removes_and_peeks_stay_correct(self):
        q = BucketQueue({f"k{i}": i for i in range(20)})
        expected = 0
        for i in range(19):
            assert q.peek_min_priority() == expected
            q.remove(f"k{expected}")
            expected += 1
        assert q.pop_min() == ("k19", 19)


class TestPeelingPattern:
    def test_monotone_peel_matches_sorted_order(self):
        """Simulate the peeling access pattern Algorithm 1 uses."""
        priorities = {f"e{i}": (i * 7) % 13 for i in range(50)}
        q = BucketQueue(priorities)
        drained = []
        while len(q):
            key, priority = q.pop_min()
            drained.append(priority)
        assert drained == sorted(priorities.values())

    def test_interleaved_decrements_never_break_min_order(self):
        q = BucketQueue({f"e{i}": 10 for i in range(10)})
        floors = []
        while len(q):
            key, priority = q.pop_min()
            floors.append(priority)
            for other in list(q.keys()):
                if q.priority(other) > priority:
                    q.decrement(other)
        assert floors == sorted(floors)
