"""The ``backend="csr"`` contract: identical results to the reference.

Property-based (hypothesis) comparison of the CSR kernel backend against
the dict-based reference implementation and networkx's independent
``k_truss`` on random Erdős–Rényi and Barabási–Albert graphs, plus the
edge cases the relabeler and kernels must survive.  Every test runs twice:
with numpy available and with the pure-``array`` fallback forced.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

import repro.fast.csr as csr_module
from repro.baselines import networkx_kappa
from repro.core import triangle_kcore_decomposition
from repro.fast import AUTO_MIN_EDGES, resolve_backend
from repro.graph import Graph, barabasi_albert, complete_graph, erdos_renyi
from repro.graph.triangles import count_triangles, triangle_supports


@pytest.fixture(params=["numpy", "pure"])
def numpy_mode(request, monkeypatch):
    """Run the test body with and without the numpy accelerator."""
    if request.param == "pure":
        monkeypatch.setattr(csr_module, "np", None)
    elif csr_module.np is None:  # pragma: no cover - numpy-less environment
        pytest.skip("numpy not installed")
    return request.param


def assert_backends_agree(graph: Graph) -> None:
    reference = triangle_kcore_decomposition(graph, backend="reference")
    fast = triangle_kcore_decomposition(graph, backend="csr")
    assert fast.kappa == reference.kappa
    assert set(fast.processing_order) == set(reference.kappa)
    values = [fast.kappa[edge] for edge in fast.processing_order]
    assert values == sorted(values)


class TestPropertyBased:
    @settings(max_examples=40, deadline=None)
    @given(
        n=st.integers(min_value=2, max_value=40),
        p=st.floats(min_value=0.0, max_value=0.5),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    def test_erdos_renyi_matches_reference(self, n, p, seed):
        assert_backends_agree(erdos_renyi(n, p, seed=seed))

    @settings(max_examples=25, deadline=None)
    @given(
        n=st.integers(min_value=5, max_value=40),
        m=st.integers(min_value=1, max_value=4),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    def test_barabasi_albert_matches_reference(self, n, m, seed):
        m = min(m, n - 1)
        assert_backends_agree(barabasi_albert(n, m, seed=seed))

    @settings(max_examples=15, deadline=None)
    @given(
        n=st.integers(min_value=3, max_value=25),
        p=st.floats(min_value=0.1, max_value=0.6),
        seed=st.integers(min_value=0, max_value=1_000),
    )
    def test_matches_networkx_truss(self, n, p, seed):
        graph = erdos_renyi(n, p, seed=seed)
        fast = triangle_kcore_decomposition(graph, backend="csr")
        assert fast.kappa == networkx_kappa(graph)

    @settings(max_examples=25, deadline=None)
    @given(
        n=st.integers(min_value=2, max_value=30),
        p=st.floats(min_value=0.0, max_value=0.5),
        seed=st.integers(min_value=0, max_value=1_000),
    )
    def test_supports_and_counts_match_reference(self, n, p, seed):
        graph = erdos_renyi(n, p, seed=seed)
        assert triangle_supports(graph, backend="csr") == triangle_supports(
            graph, backend="reference"
        )
        assert count_triangles(graph, backend="csr") == count_triangles(
            graph, backend="reference"
        )


class TestEdgeCases:
    def test_empty_graph(self, numpy_mode):
        result = triangle_kcore_decomposition(Graph(), backend="csr")
        assert result.kappa == {}
        assert result.processing_order == []
        assert count_triangles(Graph(), backend="csr") == 0

    def test_isolated_vertices_only(self, numpy_mode):
        graph = Graph(vertices=[1, 2, 3])
        result = triangle_kcore_decomposition(graph, backend="csr")
        assert result.kappa == {}

    def test_triangle_free_graph(self, numpy_mode):
        star = Graph(edges=[(0, i) for i in range(1, 9)])
        result = triangle_kcore_decomposition(star, backend="csr")
        assert set(result.kappa.values()) == {0}
        assert count_triangles(star, backend="csr") == 0
        assert set(triangle_supports(star, backend="csr").values()) == {0}

    def test_single_clique(self, numpy_mode):
        for n in range(3, 9):
            result = triangle_kcore_decomposition(complete_graph(n), backend="csr")
            assert set(result.kappa.values()) == {n - 2}

    def test_two_disjoint_cliques(self, numpy_mode):
        graph = complete_graph(6)
        for u, v in complete_graph(4, offset=100).edges():
            graph.add_edge(u, v)
        assert_backends_agree(graph)

    def test_non_integer_labels_round_trip(self, numpy_mode):
        graph = Graph(
            edges=[
                ("alpha", "beta"),
                ("beta", "gamma"),
                ("gamma", "alpha"),
                (("t", 1), "alpha"),
                (("t", 1), "beta"),
            ]
        )
        assert_backends_agree(graph)
        fast = triangle_kcore_decomposition(graph, backend="csr")
        # Keys must be the canonical edges of the input graph, unchanged by
        # the integer relabeling round trip.
        assert set(fast.kappa) == set(graph.edges())

    def test_string_labelled_fig2(self, fig2_graph, numpy_mode):
        fast = triangle_kcore_decomposition(fig2_graph, backend="csr")
        assert fast.kappa_of("A", "B") == 1
        assert fast.kappa_of("B", "C") == 2


class TestNumpyParity:
    """The pure-array fallback must be bit-identical to the numpy path."""

    @pytest.mark.parametrize("seed", range(4))
    def test_identical_results_and_order(self, monkeypatch, seed):
        if csr_module.np is None:  # pragma: no cover
            pytest.skip("numpy not installed")
        graph = erdos_renyi(30, 0.25, seed=seed)
        with_numpy = triangle_kcore_decomposition(graph, backend="csr")
        monkeypatch.setattr(csr_module, "np", None)
        without_numpy = triangle_kcore_decomposition(graph, backend="csr")
        assert with_numpy.kappa == without_numpy.kappa
        assert with_numpy.processing_order == without_numpy.processing_order

    def test_identical_csr_arrays(self, monkeypatch):
        if csr_module.np is None:  # pragma: no cover
            pytest.skip("numpy not installed")
        graph = barabasi_albert(40, 3, seed=9)
        built_numpy = csr_module.CSRGraph.from_graph(graph)
        monkeypatch.setattr(csr_module, "np", None)
        built_pure = csr_module.CSRGraph.from_graph(graph)
        assert built_numpy.labels == built_pure.labels
        assert built_numpy.indptr == built_pure.indptr
        assert built_numpy.indices == built_pure.indices
        assert built_numpy.arc_eids == built_pure.arc_eids
        assert built_numpy.forward_start == built_pure.forward_start
        assert built_numpy.edge_endpoints == built_pure.edge_endpoints


class TestBackendResolution:
    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            triangle_kcore_decomposition(Graph(), backend="gpu")

    def test_membership_forces_reference_on_auto(self):
        graph = erdos_renyi(20, 0.3, seed=1)
        assert resolve_backend("auto", graph, needs_reference=True) == "reference"

    def test_membership_with_explicit_csr_rejected(self):
        graph = erdos_renyi(20, 0.3, seed=1)
        with pytest.raises(ValueError, match="membership"):
            triangle_kcore_decomposition(
                graph, backend="csr", store_membership=True
            )

    def test_auto_picks_by_size(self):
        small = Graph(edges=[(0, 1)])
        assert resolve_backend("auto", small) == "reference"
        big = barabasi_albert(AUTO_MIN_EDGES // 2 + 10, 2, seed=0)
        assert big.num_edges >= AUTO_MIN_EDGES
        assert resolve_backend("auto", big) == "csr"

    def test_explicit_backends_respected(self):
        graph = Graph(edges=[(0, 1)])
        assert resolve_backend("reference", graph) == "reference"
        assert resolve_backend("csr", graph) == "csr"


class TestCLIFlag:
    @pytest.mark.parametrize("backend", ["auto", "reference", "csr"])
    def test_decompose_backend_flag(self, backend, capsys):
        from repro.cli import main

        assert main(["decompose", "synthetic", "--backend", backend]) == 0
        out = capsys.readouterr().out
        assert f"({backend} backend)" in out
        assert "kappa histogram" in out
