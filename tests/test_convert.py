"""Tests for networkx conversion."""

import networkx as nx

from repro.graph import Graph, erdos_renyi
from repro.graph.convert import from_networkx, to_networkx


class TestToNetworkx:
    def test_roundtrip(self):
        g = erdos_renyi(30, 0.2, seed=1)
        back = from_networkx(to_networkx(g))
        assert back == g

    def test_isolated_vertices_survive(self):
        g = Graph(edges=[(1, 2)], vertices=[9])
        nx_graph = to_networkx(g)
        assert 9 in nx_graph.nodes


class TestFromNetworkx:
    def test_drops_self_loops(self):
        nx_graph = nx.Graph()
        nx_graph.add_edge(1, 1)
        nx_graph.add_edge(1, 2)
        g = from_networkx(nx_graph)
        assert g.num_edges == 1

    def test_multigraph_style_duplicates_collapsed(self):
        nx_graph = nx.Graph([(1, 2), (2, 1)])
        assert from_networkx(nx_graph).num_edges == 1
