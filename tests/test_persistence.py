"""Tests for result save/load."""

import json

import pytest

from repro.core import (
    load_result,
    save_result,
    triangle_kcore_decomposition,
)
from repro.exceptions import DecompositionError
from repro.graph import Graph, erdos_renyi


class TestRoundtrip:
    def test_random_graph(self, tmp_path):
        g = erdos_renyi(40, 0.25, seed=2)
        result = triangle_kcore_decomposition(g)
        path = tmp_path / "result.json"
        save_result(result, path)
        back = load_result(path)
        assert back.kappa == result.kappa
        assert back.processing_order == result.processing_order

    def test_string_vertices(self, tmp_path):
        g = Graph(edges=[("a", "b"), ("b", "c"), ("a", "c")])
        result = triangle_kcore_decomposition(g)
        path = tmp_path / "result.json"
        save_result(result, path)
        assert load_result(path).kappa == result.kappa

    def test_empty_graph(self, tmp_path):
        result = triangle_kcore_decomposition(Graph())
        path = tmp_path / "result.json"
        save_result(result, path)
        assert load_result(path).kappa == {}

    def test_file_is_plain_json(self, tmp_path):
        g = Graph(edges=[(1, 2)])
        path = tmp_path / "result.json"
        save_result(triangle_kcore_decomposition(g), path)
        document = json.loads(path.read_text())
        assert document["format"] == "triangle-kcore-result"
        assert document["edges"] == [[1, 2, 0]]


class TestErrors:
    def test_unserializable_vertex(self, tmp_path):
        g = Graph(edges=[((1, 2), (3, 4))])  # tuple vertices
        result = triangle_kcore_decomposition(g)
        with pytest.raises(DecompositionError):
            save_result(result, tmp_path / "result.json")

    def test_wrong_format(self, tmp_path):
        path = tmp_path / "bogus.json"
        path.write_text('{"format": "something-else"}')
        with pytest.raises(DecompositionError):
            load_result(path)

    def test_wrong_version(self, tmp_path):
        path = tmp_path / "bogus.json"
        path.write_text(
            '{"format": "triangle-kcore-result", "version": 99, "edges": []}'
        )
        with pytest.raises(DecompositionError):
            load_result(path)

    def test_malformed_entry(self, tmp_path):
        path = tmp_path / "bogus.json"
        path.write_text(
            '{"format": "triangle-kcore-result", "version": 1, '
            '"edges": [[1, 2]]}'
        )
        with pytest.raises(DecompositionError):
            load_result(path)


class TestPersistenceError:
    """Corrupt artifacts raise the typed error, naming the offending path."""

    def write(self, tmp_path, text, name="bogus.json"):
        path = tmp_path / name
        path.write_text(text)
        return path

    def test_invalid_json_is_typed_not_raw(self, tmp_path):
        from repro.exceptions import PersistenceError

        path = self.write(tmp_path, '{"format": "triangle-kcore-resu')
        with pytest.raises(PersistenceError) as excinfo:
            load_result(path)
        # Never a raw json.JSONDecodeError, and the message names the file.
        assert str(path) in str(excinfo.value)
        assert excinfo.value.path == str(path)

    def test_truncated_roundtrip_file(self, tmp_path):
        from repro.exceptions import PersistenceError

        g = erdos_renyi(20, 0.3, seed=7)
        path = tmp_path / "result.json"
        save_result(triangle_kcore_decomposition(g), path)
        text = path.read_text()
        path.write_text(text[: len(text) // 2])
        with pytest.raises(PersistenceError):
            load_result(path)

    def test_is_a_decomposition_error(self, tmp_path):
        from repro.exceptions import PersistenceError

        assert issubclass(PersistenceError, DecompositionError)
        path = self.write(tmp_path, "[]")  # valid JSON, wrong shape
        with pytest.raises(DecompositionError):
            load_result(path)

    @pytest.mark.parametrize(
        "edges_json",
        [
            '[[1, 2]]',  # wrong arity
            '[["a", [1], 0]]',  # non-scalar vertex
            '[[1, 2, -1]]',  # negative kappa
            '[[1, 2, true]]',  # bool masquerading as kappa
            '[[1, 2, "3"]]',  # string kappa
            '[[5, 5, 0]]',  # self loop
            '[[1, 2, 0], [2, 1, 0]]',  # duplicate (canonicalized)
            '{"not": "a list"}',  # edges not a list
        ],
    )
    def test_schema_violations(self, tmp_path, edges_json):
        from repro.exceptions import PersistenceError

        path = self.write(
            tmp_path,
            '{"format": "triangle-kcore-result", "version": 1, '
            f'"edges": {edges_json}}}',
        )
        with pytest.raises(PersistenceError):
            load_result(path)

    def test_wrong_format_and_version_are_typed(self, tmp_path):
        from repro.exceptions import PersistenceError

        with pytest.raises(PersistenceError):
            load_result(self.write(tmp_path, '{"format": "nope"}'))
        with pytest.raises(PersistenceError):
            load_result(
                self.write(
                    tmp_path,
                    '{"format": "triangle-kcore-result", "version": 99, '
                    '"edges": []}',
                )
            )

    def test_missing_file_still_file_not_found(self, tmp_path):
        # Absent files are a caller bug, not artifact corruption; the
        # contract (and the CLI's error mapping) keeps FileNotFoundError.
        with pytest.raises(FileNotFoundError):
            load_result(tmp_path / "never-written.json")

    def test_roundtrip_survives_load_after_corruption_check(self, tmp_path):
        g = erdos_renyi(25, 0.3, seed=9)
        result = triangle_kcore_decomposition(g)
        path = tmp_path / "result.json"
        save_result(result, path)
        back = load_result(path)
        assert back.kappa == result.kappa
        assert back.max_kappa == result.max_kappa


class TestStaleness:
    def test_stale_maintainer_detected(self):
        from repro.core import DynamicTriangleKCore
        from repro.exceptions import StaleIndexError

        g = Graph(edges=[(0, 1), (1, 2), (0, 2)])
        maintainer = DynamicTriangleKCore(g, copy=False)
        g.add_edge(0, 3)  # out-of-band mutation
        with pytest.raises(StaleIndexError):
            maintainer.add_edge(1, 3)
        with pytest.raises(StaleIndexError):
            maintainer.remove_edge(0, 1)

    def test_copy_mode_immune_to_caller_mutations(self):
        from repro.core import DynamicTriangleKCore

        g = Graph(edges=[(0, 1), (1, 2), (0, 2)])
        maintainer = DynamicTriangleKCore(g)  # copy=True default
        g.add_edge(0, 3)
        maintainer.add_edge(1, 3)  # fine: maintainer owns its copy
        assert maintainer.kappa_of(1, 3) == 0
