"""Unit tests for edge-list and snapshot I/O."""

import pytest

from repro.exceptions import DatasetError
from repro.graph import (
    Graph,
    erdos_renyi,
    graph_diff,
    read_diff,
    read_edge_list,
    read_snapshots,
    write_diff,
    write_edge_list,
    write_snapshots,
)


class TestEdgeListRoundtrip:
    def test_roundtrip(self, tmp_path):
        g = erdos_renyi(30, 0.2, seed=1)
        path = tmp_path / "g.edges"
        write_edge_list(g, path)
        loaded = read_edge_list(path)
        assert set(loaded.edges()) == set(g.edges())

    def test_header_written(self, tmp_path):
        g = Graph(edges=[(1, 2)])
        path = tmp_path / "g.edges"
        write_edge_list(g, path, header="hello\nworld")
        text = path.read_text()
        assert "# hello" in text and "# world" in text

    def test_comments_and_blanks_skipped(self, tmp_path):
        path = tmp_path / "g.edges"
        path.write_text("# comment\n\n% also comment\n1 2\n")
        g = read_edge_list(path)
        assert g.num_edges == 1

    def test_string_vertices_preserved(self, tmp_path):
        path = tmp_path / "g.edges"
        path.write_text("alice bob\nbob 3\n")
        g = read_edge_list(path)
        assert g.has_edge("alice", "bob")
        assert g.has_edge("bob", 3)

    def test_self_loops_dropped(self, tmp_path):
        path = tmp_path / "g.edges"
        path.write_text("1 1\n1 2\n")
        assert read_edge_list(path).num_edges == 1

    def test_malformed_line_raises(self, tmp_path):
        path = tmp_path / "g.edges"
        path.write_text("justone\n")
        with pytest.raises(DatasetError):
            read_edge_list(path)


class TestDiffs:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "delta.txt"
        write_diff([(1, 2), (3, 4)], [(5, 6)], path)
        added, removed = read_diff(path)
        assert added == [(1, 2), (3, 4)]
        assert removed == [(5, 6)]

    def test_malformed_diff(self, tmp_path):
        path = tmp_path / "delta.txt"
        path.write_text("? 1 2\n")
        with pytest.raises(DatasetError):
            read_diff(path)

    def test_graph_diff(self):
        old = Graph(edges=[(1, 2), (2, 3)])
        new = Graph(edges=[(2, 3), (3, 4)])
        added, removed = graph_diff(old, new)
        assert added == [(3, 4)]
        assert removed == [(1, 2)]


class TestSnapshots:
    def test_roundtrip(self, tmp_path):
        snaps = [erdos_renyi(20, 0.2, seed=s) for s in range(3)]
        paths = write_snapshots(snaps, tmp_path)
        assert len(paths) == 3
        loaded = read_snapshots(tmp_path)
        for original, back in zip(snaps, loaded):
            assert set(back.edges()) == set(original.edges())

    def test_missing_directory_contents(self, tmp_path):
        with pytest.raises(DatasetError):
            read_snapshots(tmp_path)
