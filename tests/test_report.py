"""Tests for the HTML report builder."""

import pytest

from repro.core import triangle_kcore_decomposition
from repro.graph import complete_graph
from repro.viz import (
    HtmlReport,
    decomposition_report,
    density_plot,
    dual_view_plots,
)


class TestHtmlReport:
    def test_minimal_document(self):
        report = HtmlReport("Title & Co")
        html = report.render()
        assert html.startswith("<!DOCTYPE html>")
        assert "Title &amp; Co" in html
        assert html.rstrip().endswith("</html>")

    def test_paragraph_escaping(self):
        report = HtmlReport("t")
        report.add_paragraph("<script>alert(1)</script>")
        assert "<script>" not in report.render()
        assert "&lt;script&gt;" in report.render()

    def test_heading_levels_clamped(self):
        report = HtmlReport("t")
        report.add_heading("deep", level=9)
        report.add_heading("shallow", level=0)
        html = report.render()
        assert "<h6>deep</h6>" in html
        assert "<h1>shallow</h1>" in html

    def test_table(self):
        report = HtmlReport("t")
        report.add_table(("a", "b"), [(1, 2), (3, 4)])
        html = report.render()
        assert "<th>a</th>" in html
        assert "<td>4</td>" in html

    def test_code_block(self):
        report = HtmlReport("t")
        report.add_code("x < y")
        assert "x &lt; y" in report.render()

    def test_plot_embedding(self, k5):
        result = triangle_kcore_decomposition(k5)
        report = HtmlReport("t")
        report.add_plot(density_plot(k5, result), caption="the clique")
        html = report.render()
        assert "<svg" in html
        assert "the clique" in html

    def test_dual_view_embedding(self):
        g = complete_graph(4)
        plots = dual_view_plots(g, added=[(0, 9), (1, 9)])
        report = HtmlReport("t")
        report.add_dual_view(plots)
        assert report.render().count("<svg") == 1  # stacked into one svg

    def test_save(self, tmp_path, k5):
        report = HtmlReport("saved")
        report.add_paragraph("content")
        path = tmp_path / "report.html"
        report.save(str(path))
        assert path.read_text().startswith("<!DOCTYPE html>")


class TestDecompositionReport:
    def test_sections_present(self, k5):
        result = triangle_kcore_decomposition(k5)
        html = decomposition_report(k5, result, title="K5").render()
        for section in ("Graph", "Kappa histogram", "Density plot",
                        "Densest communities"):
            assert section in html
        assert "<svg" in html

    def test_community_rows_capped(self):
        g = complete_graph(4)
        for i in range(6):
            base = 10 * (i + 1)
            for u in range(base, base + 4):
                for v in range(u + 1, base + 4):
                    g.add_edge(u, v)
        result = triangle_kcore_decomposition(g)
        html = decomposition_report(g, result, max_communities=2).render()
        # rank column: only ranks 1 and 2 rendered
        assert "<td>2</td>" in html
        assert "<td>3</td>" not in html.split("Densest communities")[1]
