"""Replication conformance: frames, log, snapshots, folds, fences, router.

The acceptance bar of the replicated tier (see docs/SERVICE.md):

* **bit-identical conformance** — after any workload, every replica's
  folded kappa map equals a from-scratch recompute of the writer's graph
  at the same version, for all 5 PR 2 workload profiles under both the
  ``incremental`` and ``batch`` repair strategies;
* **typed wire format** — corrupt or truncated frames raise
  :class:`FrameError` with a machine-readable reason, never a silent
  partial apply;
* **bounded staleness** — ``min_version`` read fences hold reads until
  the replica catches up, and the router fails a fenced read over to a
  backend that can satisfy it;
* **read-your-writes through the router** — a write's returned version,
  passed back as ``min_version``, never observes older state.
"""

import asyncio
import json

import pytest

from repro.core import triangle_kcore_decomposition
from repro.core.dynamic import DynamicTriangleKCore
from repro.graph import Graph, complete_graph
from repro.replication import (
    KIND_COMMIT,
    KIND_HELLO,
    KIND_SNAPSHOT,
    CommitRecord,
    FrameError,
    LocalCluster,
    ReplicationLog,
    WriterState,
    decode_header,
    encode_frame,
    read_frame,
)
from repro.replication.frames import HEADER_BYTES
from repro.service import ServiceClientError
from repro.testing import generate
from repro.testing.editscript import EditScript

# All five PR 2 workload profiles (kept literal so a renamed profile
# breaks loudly here rather than silently shrinking coverage).
PROFILES = ("adversarial", "churn", "grow_shrink", "triangle_bursts", "uniform")


def make_fixture_graph() -> Graph:
    """K5 + pendant triangle + isolated vertex: all kappa levels 0..3."""
    g = complete_graph(5)
    g.add_edge(0, 10)
    g.add_edge(1, 10)
    g.add_edge(10, 11)
    g.add_vertex(99)
    return g


def chunked(script: EditScript, size: int):
    for start in range(0, len(script), size):
        yield EditScript(ops=script.ops[start:start + size])


# --------------------------------------------------------------------- #
# frame codec
# --------------------------------------------------------------------- #


def roundtrip(kind: int, payload: dict):
    raw = encode_frame(kind, payload)

    async def run():
        reader = asyncio.StreamReader()
        reader.feed_data(raw)
        reader.feed_eof()
        return await read_frame(reader)

    return asyncio.run(run())


def read_raw(raw: bytes):
    async def run():
        reader = asyncio.StreamReader()
        reader.feed_data(raw)
        reader.feed_eof()
        return await read_frame(reader)

    return asyncio.run(run())


class TestFrames:
    def test_roundtrip_all_kinds(self):
        for kind in (KIND_HELLO, KIND_SNAPSHOT, KIND_COMMIT):
            got_kind, payload = roundtrip(kind, {"x": [1, "a"], "kind": kind})
            assert got_kind == kind
            assert payload == {"x": [1, "a"], "kind": kind}

    def test_bad_magic_is_typed(self):
        raw = bytearray(encode_frame(KIND_HELLO, {"v": 1}))
        raw[0:4] = b"HTTP"
        with pytest.raises(FrameError) as excinfo:
            read_raw(bytes(raw))
        assert excinfo.value.reason == "bad_magic"

    def test_bad_protocol_is_typed(self):
        raw = bytearray(encode_frame(KIND_HELLO, {"v": 1}))
        raw[4] = 99
        with pytest.raises(FrameError) as excinfo:
            read_raw(bytes(raw))
        assert excinfo.value.reason == "bad_protocol"

    def test_bad_kind_is_typed(self):
        raw = bytearray(encode_frame(KIND_HELLO, {"v": 1}))
        raw[5] = 200
        with pytest.raises(FrameError) as excinfo:
            read_raw(bytes(raw))
        assert excinfo.value.reason == "bad_kind"

    def test_corrupt_payload_fails_crc(self):
        raw = bytearray(encode_frame(KIND_COMMIT, {"ops": [1, 2, 3]}))
        raw[-1] ^= 0xFF
        with pytest.raises(FrameError) as excinfo:
            read_raw(bytes(raw))
        assert excinfo.value.reason == "bad_crc"

    def test_truncated_header_and_body_are_typed(self):
        raw = encode_frame(KIND_COMMIT, {"ops": list(range(50))})
        for cut in (HEADER_BYTES - 3, len(raw) - 4):
            with pytest.raises(FrameError) as excinfo:
                read_raw(raw[:cut])
            assert excinfo.value.reason == "truncated"

    def test_clean_eof_is_connection_reset_not_frame_error(self):
        with pytest.raises(ConnectionResetError):
            read_raw(b"")

    def test_oversized_length_rejected_without_reading_body(self):
        header = bytearray(encode_frame(KIND_HELLO, {})[:HEADER_BYTES])
        header[6:10] = (2**31).to_bytes(4, "big")
        with pytest.raises(FrameError) as excinfo:
            decode_header(bytes(header))
        assert excinfo.value.reason == "oversized"

    def test_commit_record_payload_roundtrip(self):
        record = CommitRecord(
            prev_version=3, version=7, strategy="batch", ops=[["add", 1, 2]]
        )
        assert CommitRecord.from_payload(record.to_payload()) == record

    def test_malformed_commit_record_is_typed(self):
        with pytest.raises(FrameError) as excinfo:
            CommitRecord.from_payload({"version": "x"})
        assert excinfo.value.reason == "bad_json"


# --------------------------------------------------------------------- #
# replication log
# --------------------------------------------------------------------- #


class TestReplicationLog:
    @staticmethod
    def record(prev: int, version: int) -> CommitRecord:
        return CommitRecord(
            prev_version=prev,
            version=version,
            strategy="incremental",
            ops=[["add", prev, version]],
        )

    def test_contiguity_enforced(self):
        log = ReplicationLog(head_version=5)
        log.append(self.record(5, 8))
        with pytest.raises(ValueError):
            log.append(self.record(9, 10))

    def test_tail_and_floor_after_rotation(self):
        log = ReplicationLog(capacity=2, head_version=0)
        for i in range(4):
            log.append(self.record(i, i + 1))
        # Records 0->1 and 1->2 were rotated out.
        assert log.floor_version == 2
        assert log.head_version == 4
        assert log.tail_since(1) is None  # below the floor: snapshot
        assert [r.version for r in log.tail_since(2)] == [3, 4]
        assert log.tail_since(4) == []  # at head: nothing to send
        assert log.tail_since(7) is None  # ahead of head: divergent

    def test_empty_log_serves_only_head(self):
        log = ReplicationLog(head_version=12)
        assert log.can_serve(12)
        assert not log.can_serve(11)
        assert log.tail_since(12) == []

    def test_rejected_only_batch_commits_nothing(self):
        # A batch where every op is rejected leaves the version alone —
        # it must not enter the log (a zero-progress record would match
        # tail_since(head) forever and spin the feed tasks).
        state = WriterState(make_fixture_graph())
        head = state.log.head_version
        outcome = state.apply_edits(
            EditScript.from_json_obj(
                {"ops": [["add", 0, 0], ["remove", 77, 78]]}
            ),
            strategy="incremental",
        )
        assert outcome["applied"] == 0
        assert outcome["version"] == outcome["prev_version"]
        assert len(state.log) == 0
        assert state.log.head_version == head
        assert state.log.tail_since(head) == []


# --------------------------------------------------------------------- #
# snapshot / restore
# --------------------------------------------------------------------- #


class TestSnapshotRestore:
    def test_snapshot_roundtrips_bit_identical(self):
        maintainer = DynamicTriangleKCore(make_fixture_graph())
        maintainer.add_edge(2, 10)
        document = maintainer.snapshot()
        # JSON-native end to end (what actually crosses the wire).
        restored = DynamicTriangleKCore.from_snapshot(
            json.loads(json.dumps(document))
        )
        assert restored.kappa == maintainer.kappa
        assert restored.graph.version == maintainer.graph.version
        assert sorted(restored.graph.vertices(), key=repr) == sorted(
            maintainer.graph.vertices(), key=repr
        )

    def test_restored_maintainer_keeps_maintaining(self):
        maintainer = DynamicTriangleKCore(make_fixture_graph())
        restored = DynamicTriangleKCore.from_snapshot(maintainer.snapshot())
        maintainer.add_edge(3, 10)
        restored.add_edge(3, 10)
        assert restored.kappa == maintainer.kappa
        assert restored.graph.version == maintainer.graph.version

    def test_malformed_snapshots_rejected(self):
        good = DynamicTriangleKCore(make_fixture_graph()).snapshot()
        for corrupt in (
            {},
            {**good, "schema": "nope/9"},
            {**good, "version": -1},
            {**good, "kappa": [[1, 2]]},
            {**good, "kappa": [[1, 2, -5]]},
        ):
            with pytest.raises(ValueError):
                DynamicTriangleKCore.from_snapshot(corrupt)

    def test_writer_snapshot_document_includes_baseline(self):
        state = WriterState(make_fixture_graph())
        state.apply_edits(EditScript.loads('{"ops": [["add", 50, 51]]}'))
        document = state.snapshot_document()
        assert document["version"] == state.version
        assert document["baseline"]["version"] == state.baseline_version
        # The baseline is the startup graph, not the edited one.
        assert ["50", "51"] not in document["baseline"]["edges"]
        assert [50, 51] not in document["baseline"]["edges"]


# --------------------------------------------------------------------- #
# end-to-end conformance: every profile, both strategies
# --------------------------------------------------------------------- #


class TestReplicationConformance:
    """Replica state at version v == from-scratch recompute at v."""

    @pytest.mark.parametrize("strategy", ("incremental", "batch"))
    @pytest.mark.parametrize("profile", PROFILES)
    def test_replica_kappa_bit_identical(self, profile, strategy):
        script = generate(profile, seed=7, n_ops=120)
        with LocalCluster(Graph(), replicas=2, with_router=False) as cluster:
            with cluster.writer_client() as client:
                version = 0
                for chunk in chunked(script, 24):
                    version = client.edits(chunk, strategy=strategy).version
            cluster.wait_converged(version)
            oracle = triangle_kcore_decomposition(
                cluster.writer_state.graph.copy()
            ).kappa
            assert cluster.writer_state.version == version
            for state in cluster.replica_states:
                assert state.version == version
                assert state.maintainer.kappa == oracle
                assert state.maintainer.kappa == cluster.writer_state.maintainer.kappa

    def test_late_joining_replica_catches_up_via_snapshot(self):
        with LocalCluster(
            make_fixture_graph(), replicas=1, with_router=False
        ) as cluster:
            with cluster.writer_client() as client:
                script = generate("uniform", seed=3, n_ops=60)
                version = client.edits(script).version
            cluster.wait_converged(version)
            # A brand-new replica joins after the writes happened.
            cluster._n_replicas += 1
            cluster._start_replica()
            cluster.wait_caught_up()
            cluster.wait_converged(version)
            newcomer = cluster.replica_states[-1]
            assert newcomer.version == version
            assert newcomer.snapshots_installed == 1
            assert (
                newcomer.maintainer.kappa
                == cluster.writer_state.maintainer.kappa
            )

    def test_rejected_only_batches_do_not_wedge_the_feed(self):
        # Regression: interleave no-op batches (all ops rejected) with
        # real ones; the cluster must stay live and converge.
        with LocalCluster(make_fixture_graph(), replicas=1, with_router=False) as cluster:
            with cluster.writer_client() as client:
                version = 0
                for _ in range(3):
                    noop = client.edits(
                        [("add", 5, 5), ("remove", 70, 71)],
                        strategy="incremental",
                    )
                    assert noop.applied == 0
                    version = client.edits([("add", 2, 10)]).version
                    version = client.edits([("remove", 2, 10)]).version
            cluster.wait_converged(version)
            state = cluster.replica_states[0]
            assert state.version == version
            assert (
                state.maintainer.kappa
                == cluster.writer_state.maintainer.kappa
            )

    def test_replica_serves_templates_against_writer_baseline(self):
        with LocalCluster(make_fixture_graph(), replicas=1) as cluster:
            with cluster.writer_client() as client:
                version = client.edits(
                    [("add", 2, 10), ("add", 3, 10), ("add", 4, 10)]
                ).version
            cluster.wait_converged(version)
            with cluster.replica_client(0) as replica:
                answer = replica.templates("new_form")
            with cluster.writer_client() as writer_client:
                expected = writer_client.templates("new_form")
            assert answer.baseline_version == expected.baseline_version
            assert answer.cliques == expected.cliques
            assert answer.version == expected.version


# --------------------------------------------------------------------- #
# read fences and the router
# --------------------------------------------------------------------- #


@pytest.fixture(scope="module")
def cluster():
    with LocalCluster(make_fixture_graph(), replicas=2) as running:
        yield running


class TestReadFences:
    def test_fenced_read_waits_for_fold(self, cluster):
        with cluster.writer_client() as writer:
            version = writer.edits([("add", 20, 21), ("add", 21, 22)]).version
        # Immediately fence a replica read at the new version: the
        # replica may not have folded yet; the fence must hold the read
        # until it has (never answer older state).
        for index in range(2):
            with cluster.replica_client(index) as replica:
                status, doc = replica.request(
                    "GET", f"/healthz?min_version={version}"
                )
            assert status == 200
            assert doc["answered_at_version"] >= version

    def test_unreachable_fence_times_out_with_stale_replica(self):
        with LocalCluster(
            make_fixture_graph(),
            replicas=1,
            with_router=False,
            fence_timeout=0.2,
        ) as small:
            with small.replica_client(0) as replica:
                with pytest.raises(ServiceClientError) as excinfo:
                    replica.request("GET", "/healthz?min_version=999999")
            assert excinfo.value.status == 503
            assert excinfo.value.code == "stale_replica"
            assert excinfo.value.retry_after is not None

    def test_malformed_fence_is_bad_request(self, cluster):
        with cluster.replica_client(0) as replica:
            for bad in ("abc", "-3", "1.5"):
                with pytest.raises(ServiceClientError) as excinfo:
                    replica.request("GET", f"/healthz?min_version={bad}")
                assert excinfo.value.status == 400

    def test_replica_refuses_writes(self, cluster):
        with cluster.replica_client(0) as replica:
            with pytest.raises(ServiceClientError) as excinfo:
                replica.edits([("add", 30, 31)])
        assert excinfo.value.status == 403
        assert excinfo.value.code == "read_only"


class TestRouter:
    def test_router_spreads_reads_across_replicas(self, cluster):
        with cluster.router_client() as router:
            for _ in range(8):
                router.kappa(0, 1)
            status, doc = router.request("GET", "/router/healthz")
        assert status == 200
        assert doc["role"] == "router"
        replica_ports = set(cluster.replica_ports)
        served = {
            int(addr.rsplit(":", 1)[1]): count
            for addr, count in doc["proxied"].items()
        }
        # Both replicas took reads; the writer served none of them.
        for port in replica_ports:
            assert served.get(port, 0) >= 3
        assert served.get(cluster.writer_port, 0) == 0

    def test_router_forwards_edits_to_writer_and_stamps_backend(self, cluster):
        with cluster.router_client() as router:
            before = cluster.writer_state.version
            outcome = router.edits([("add", 40, 41)])
            assert outcome.version > before
            assert cluster.writer_state.version == outcome.version
            # Reads after the write, fenced at its version, see it.
            status, doc = router.request(
                "GET", f"/healthz?min_version={outcome.version}"
            )
            assert doc["answered_at_version"] >= outcome.version

    def test_router_read_your_writes_loop(self, cluster):
        with cluster.router_client() as router:
            base = 50
            for step in range(5):
                outcome = router.edits(
                    [("add", base + step, base + step + 1)]
                )
                status, doc = router.request(
                    "GET", f"/healthz?min_version={outcome.version}"
                )
                assert status == 200
                assert doc["answered_at_version"] >= outcome.version

    def test_router_healthz_reports_topology(self, cluster):
        with cluster.router_client() as router:
            _status, doc = router.request("GET", "/router/healthz")
        assert doc["writer"] == ["127.0.0.1", cluster.writer_port]
        assert len(doc["replicas"]) == 2

    def test_router_404_passthrough(self, cluster):
        with cluster.router_client() as router:
            with pytest.raises(ServiceClientError) as excinfo:
                router.request("GET", "/no/such/endpoint")
        assert excinfo.value.status == 404
