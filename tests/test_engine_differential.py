"""Differential test: the engine's dynamic backend vs per-snapshot recompute.

Reuses the PR 2 workload generators (``repro.testing.workloads``): each
profile's edit script is replayed under shadow semantics and snapshotted
every few ops, producing the kind of snapshot sequence ``backend="dynamic"``
exists for.  The engine must answer every snapshot bit-identically to a
fresh Algorithm 1 run on that snapshot — regardless of profile, churn
level, or the incremental/recompute strategy crossover.
"""

import pytest

from repro.core import triangle_kcore_decomposition
from repro.engine import Engine
from repro.graph import Graph
from repro.testing.editscript import apply_op
from repro.testing.workloads import PROFILES, generate

OPS_PER_PROFILE = 120
SNAPSHOT_EVERY = 15


def snapshot_sequence(profile: str, seed: int):
    """Replay the profile's script from empty, snapshotting periodically."""
    script = generate(profile, seed, OPS_PER_PROFILE)
    working = Graph()
    snapshots = []
    for index, op in enumerate(script, start=1):
        apply_op(working, op)
        if index % SNAPSHOT_EVERY == 0:
            snapshots.append(working.copy())
    return snapshots


@pytest.mark.parametrize("profile", sorted(PROFILES))
@pytest.mark.parametrize("seed", [0, 7])
def test_dynamic_backend_bit_identical_to_recompute(profile, seed):
    snapshots = snapshot_sequence(profile, seed)
    assert len(snapshots) >= 2, "workload too short to exercise diffs"
    engine = Engine()
    for snap in snapshots:
        dynamic = engine.decompose(snap, backend="dynamic", use_cache=False)
        recompute = triangle_kcore_decomposition(snap)
        assert dynamic.kappa == recompute.kappa
        assert dynamic.max_kappa == recompute.max_kappa
    # The sequence genuinely exercised the warm path: one cold start, the
    # rest answered by diff application.
    assert engine.stats.counters["dynamic_cold_starts"] == 1
    assert engine.stats.counters.get("dynamic_updates", 0) >= len(snapshots) - 2


@pytest.mark.parametrize("strategy", ["incremental", "recompute", "auto"])
def test_every_dynamic_strategy_agrees(strategy):
    snapshots = snapshot_sequence("churn", 3)
    engine = Engine(dynamic_strategy=strategy)
    for snap in snapshots:
        got = engine.decompose(snap, backend="dynamic", use_cache=False)
        assert got.kappa == triangle_kcore_decomposition(snap).kappa
