"""Unit tests for synthetic graph generators."""

import pytest


def _numpy_available() -> bool:
    try:
        import numpy  # noqa: F401
    except ImportError:
        return False
    return True


requires_numpy = pytest.mark.skipif(
    not _numpy_available(), reason="the R-MAT generator requires numpy"
)

from repro.graph import (
    barabasi_albert,
    canonical_edge,
    count_triangles,
    erdos_renyi,
    planted_cliques,
    random_edge_sample,
    random_non_edges,
    relaxed_caveman,
    rmat,
    watts_strogatz,
)


class TestErdosRenyi:
    def test_deterministic(self):
        a = erdos_renyi(50, 0.1, seed=3)
        b = erdos_renyi(50, 0.1, seed=3)
        assert a == b

    def test_different_seeds_differ(self):
        a = erdos_renyi(50, 0.1, seed=3)
        b = erdos_renyi(50, 0.1, seed=4)
        assert a != b

    def test_p_zero(self):
        g = erdos_renyi(20, 0.0, seed=1)
        assert g.num_edges == 0
        assert g.num_vertices == 20

    def test_p_one_is_complete(self):
        g = erdos_renyi(10, 1.0, seed=1)
        assert g.num_edges == 45

    def test_edge_count_near_expectation(self):
        n, p = 200, 0.1
        g = erdos_renyi(n, p, seed=9)
        expected = p * n * (n - 1) / 2
        assert 0.8 * expected < g.num_edges < 1.2 * expected

    def test_invalid_p(self):
        with pytest.raises(ValueError):
            erdos_renyi(10, 1.5)


class TestBarabasiAlbert:
    def test_size(self):
        g = barabasi_albert(100, 3, seed=1)
        assert g.num_vertices == 100
        # m+1 clique start, then m edges per vertex.
        assert g.num_edges == 6 + 3 * (100 - 4)

    def test_heavy_tail(self):
        g = barabasi_albert(400, 2, seed=7)
        degrees = sorted((g.degree(v) for v in g.vertices()), reverse=True)
        assert degrees[0] > 4 * (sum(degrees) / len(degrees))

    def test_invalid_m(self):
        with pytest.raises(ValueError):
            barabasi_albert(5, 5)


class TestWattsStrogatz:
    def test_lattice_degree(self):
        g = watts_strogatz(30, 4, 0.0, seed=1)
        assert all(g.degree(v) == 4 for v in g.vertices())

    def test_lattice_has_triangles(self):
        g = watts_strogatz(30, 4, 0.0, seed=1)
        assert count_triangles(g) > 0

    def test_odd_k_rejected(self):
        with pytest.raises(ValueError):
            watts_strogatz(30, 3, 0.1)

    def test_k_too_large_rejected(self):
        with pytest.raises(ValueError):
            watts_strogatz(4, 4, 0.1)


class TestPlantedCliques:
    def test_cliques_present(self):
        planted = planted_cliques(50, [8, 6], background_p=0.02, seed=5)
        for clique in planted.cliques:
            members = clique.vertices
            for i, u in enumerate(members):
                for v in members[i + 1 :]:
                    assert planted.graph.has_edge(u, v)

    def test_drop_edges(self):
        planted = planted_cliques(
            30, [10], background_p=0.0, drop_edges=[1], seed=5
        )
        clique = planted.cliques[0]
        assert len(clique.missing_edges) == 1
        u, v = clique.missing_edges[0]
        assert not planted.graph.has_edge(u, v)

    def test_too_many_clique_vertices(self):
        with pytest.raises(ValueError):
            planted_cliques(10, [8, 8])

    def test_misaligned_drop_edges(self):
        with pytest.raises(ValueError):
            planted_cliques(30, [5, 5], drop_edges=[1])


class TestRelaxedCaveman:
    def test_size(self):
        g = relaxed_caveman(5, 6, 0.1, seed=2)
        assert g.num_vertices == 30

    def test_zero_rewire_is_disjoint_cliques(self):
        g = relaxed_caveman(3, 4, 0.0, seed=2)
        assert g.num_edges == 3 * 6
        assert len(g.connected_components()) == 3


@requires_numpy
class TestRmat:
    def test_size_and_determinism(self):
        a = rmat(8, 4, seed=3)
        b = rmat(8, 4, seed=3)
        assert a == b
        assert a.num_vertices == 256
        assert a.num_edges >= 4 * 256 * 0.9  # may fall slightly short via dedup

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            rmat(6, 4, a=0.5, b=0.4, c=0.4)


class TestSampling:
    def test_random_edge_sample_size(self):
        g = erdos_renyi(60, 0.2, seed=1)
        sample = random_edge_sample(g, 0.1, seed=2)
        assert len(sample) == round(0.1 * g.num_edges)
        assert all(g.has_edge(u, v) for u, v in sample)

    def test_random_edge_sample_unique(self):
        g = erdos_renyi(60, 0.2, seed=1)
        sample = random_edge_sample(g, 0.5, seed=2)
        assert len(sample) == len(set(sample))

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            random_edge_sample(erdos_renyi(10, 0.5, seed=0), 1.5)

    def test_random_non_edges(self):
        g = erdos_renyi(40, 0.3, seed=4)
        pairs = random_non_edges(g, 20, seed=5)
        assert len(pairs) == 20
        assert all(not g.has_edge(u, v) for u, v in pairs)
        assert all(canonical_edge(u, v) == (u, v) for u, v in pairs)

    def test_triangle_closing_non_edges(self):
        g = erdos_renyi(40, 0.3, seed=4)
        pairs = random_non_edges(g, 10, seed=5, triangle_closing=True)
        for u, v in pairs:
            assert g.common_neighbors(u, v), "pair must close a wedge"
