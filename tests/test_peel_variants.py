"""The ablation peel variants must agree with the default implementation."""

import pytest

from repro.core import (
    triangle_kcore_decomposition,
    triangle_kcore_heap,
    triangle_kcore_stored_triangles,
)
from repro.graph import Graph, complete_graph, erdos_renyi


@pytest.mark.parametrize(
    "variant", [triangle_kcore_heap, triangle_kcore_stored_triangles]
)
class TestVariantEquivalence:
    def test_empty(self, variant):
        assert variant(Graph()).kappa == {}

    def test_clique(self, variant):
        assert variant(complete_graph(6)).kappa == (
            triangle_kcore_decomposition(complete_graph(6)).kappa
        )

    @pytest.mark.parametrize("seed", range(5))
    def test_random_graphs(self, variant, seed):
        g = erdos_renyi(40, 0.25, seed=seed)
        assert variant(g).kappa == triangle_kcore_decomposition(g).kappa

    def test_processing_order_nondecreasing(self, variant):
        g = erdos_renyi(40, 0.25, seed=7)
        result = variant(g)
        values = [result.kappa[e] for e in result.processing_order]
        assert values == sorted(values)

    def test_fig2(self, variant, fig2_graph):
        result = variant(fig2_graph)
        assert result.kappa_of("A", "B") == 1
        assert result.kappa_of("D", "E") == 2
