"""Tests for the visualization layer (ordering, plots, renderers)."""

import pytest

from repro.core import triangle_kcore_decomposition
from repro.graph import Graph, complete_graph, planted_cliques
from repro.viz import (
    DensityPlot,
    density_plot,
    density_plot_from_scores,
    density_plot_svg,
    dual_view_plots,
    dual_view_svg,
    graph_drawing_svg,
    optics_order,
    order_positions,
    plot_similarity,
    render,
    save_svg,
    sparkline,
    vertex_scores,
)


@pytest.fixture
def planted():
    return planted_cliques(80, [10, 6], background_p=0.02, seed=4)


@pytest.fixture
def planted_plot(planted):
    result = triangle_kcore_decomposition(planted.graph)
    return density_plot(planted.graph, result, title="planted")


class TestVertexScores:
    def test_max_over_incident_edges(self):
        scores = vertex_scores({(1, 2): 5, (2, 3): 7})
        assert scores == {1: 5, 2: 7, 3: 7}

    def test_empty(self):
        assert vertex_scores({}) == {}


class TestOpticsOrder:
    def test_covers_all_vertices_once(self, planted):
        result = triangle_kcore_decomposition(planted.graph)
        scores = {e: k + 2 for e, k in result.kappa.items()}
        order, heights = optics_order(planted.graph, scores)
        assert len(order) == planted.graph.num_vertices
        assert len(set(order)) == len(order)
        assert len(heights) == len(order)

    def test_densest_clique_comes_first_and_contiguous(self, planted):
        result = triangle_kcore_decomposition(planted.graph)
        scores = {e: k + 2 for e, k in result.kappa.items()}
        order, heights = optics_order(planted.graph, scores)
        big = set(planted.cliques[0].vertices)
        positions = [i for i, v in enumerate(order) if v in big]
        assert positions[0] == 0
        assert positions == list(range(len(big)))

    def test_isolated_vertices_have_zero_height(self):
        g = Graph(edges=[(0, 1), (1, 2), (0, 2)], vertices=[99])
        result = triangle_kcore_decomposition(g)
        order, heights = optics_order(
            g, {e: k + 2 for e, k in result.kappa.items()}
        )
        assert heights[order.index(99)] == 0

    def test_order_positions(self):
        assert order_positions(["a", "b"]) == {"a": 0, "b": 1}


class TestDensityPlot:
    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            DensityPlot(order=[1, 2], heights=[1])

    def test_max_height(self, planted_plot):
        assert planted_plot.max_height == 10

    def test_position_and_height_lookup(self, planted_plot):
        v = planted_plot.order[0]
        assert planted_plot.position_of(v) == 0
        assert planted_plot.height_of(v) == planted_plot.heights[0]

    def test_position_of_missing_vertex(self, planted_plot):
        with pytest.raises(ValueError):
            planted_plot.position_of("ghost")

    def test_series(self):
        plot = DensityPlot(order=["a", "b"], heights=[3, 1])
        assert plot.series() == [(0, 3), (1, 1)]

    def test_markers(self, planted_plot):
        marker = planted_plot.add_marker([planted_plot.order[0]], label="m")
        assert planted_plot.markers == [marker]

    def test_y_modes(self, planted):
        result = triangle_kcore_decomposition(planted.graph)
        reach = density_plot(planted.graph, result, y_mode="reachability")
        vmax = density_plot(planted.graph, result, y_mode="vertex_max")
        assert reach.max_height == vmax.max_height
        # vertex_max heights dominate reachability heights pointwise.
        heights_reach = dict(zip(reach.order, reach.heights))
        heights_vmax = dict(zip(vmax.order, vmax.heights))
        assert all(heights_vmax[v] >= heights_reach[v] for v in heights_reach)

    def test_invalid_y_mode(self, planted):
        with pytest.raises(ValueError):
            density_plot_from_scores(planted.graph, {}, y_mode="bogus")

    def test_clique_plateau_height(self):
        g = complete_graph(6)
        result = triangle_kcore_decomposition(g)
        plot = density_plot(g, result)
        assert plot.heights == [6] * 6


class TestPlotSimilarity:
    def test_identical_plots(self, planted_plot):
        assert plot_similarity(planted_plot, planted_plot) == pytest.approx(1.0)

    def test_order_invariance(self):
        a = DensityPlot(order=[1, 2, 3], heights=[5, 3, 1])
        b = DensityPlot(order=[3, 1, 2], heights=[1, 5, 3])
        assert plot_similarity(a, b) == pytest.approx(1.0)

    def test_disjoint_vertex_sets(self):
        a = DensityPlot(order=[1], heights=[1])
        b = DensityPlot(order=[2], heights=[1])
        assert plot_similarity(a, b) == 0.0

    def test_both_empty(self):
        empty = DensityPlot(order=[], heights=[])
        assert plot_similarity(empty, empty) == 1.0

    def test_divergent_heights_score_low(self):
        a = DensityPlot(order=[1, 2], heights=[10, 10])
        b = DensityPlot(order=[1, 2], heights=[0, 0])
        assert plot_similarity(a, b) == pytest.approx(0.0)


class TestRenderers:
    def test_ascii_render_contains_title_and_axis(self, planted_plot):
        text = render(planted_plot, height=6, width=60)
        assert "planted" in text
        assert "+" in text

    def test_ascii_render_empty(self):
        text = render(DensityPlot(order=[], heights=[], title="t"))
        assert "(empty plot)" in text

    def test_sparkline_length(self, planted_plot):
        line = sparkline(planted_plot, width=40)
        assert 0 < len(line) <= 40

    def test_sparkline_empty(self):
        assert sparkline(DensityPlot(order=[], heights=[])) == ""

    def test_svg_well_formed(self, planted_plot):
        planted_plot.add_marker(planted_plot.order[:5], label="big", shape="rect")
        svg = density_plot_svg(planted_plot)
        assert svg.startswith("<svg")
        assert svg.rstrip().endswith("</svg>")
        assert svg.count("<rect") >= 1
        assert "big" in svg

    def test_svg_marker_shapes(self, planted_plot):
        for shape in ("circle", "rect", "ellipse", "triangle"):
            plot = DensityPlot(
                order=list(planted_plot.order),
                heights=list(planted_plot.heights),
            )
            plot.add_marker(plot.order[:3], shape=shape)
            svg = density_plot_svg(plot)
            assert svg.startswith("<svg")

    def test_save_svg(self, planted_plot, tmp_path):
        path = tmp_path / "plot.svg"
        save_svg(density_plot_svg(planted_plot), str(path))
        assert path.read_text().startswith("<svg")

    def test_graph_drawing(self, k5):
        svg = graph_drawing_svg(k5, highlight_edges=[(0, 1)])
        assert svg.count("<line") == 10
        assert "#c62828" in svg  # the highlighted edge color


class TestDualView:
    def test_algorithm3_zeroes_old_edges(self):
        g = complete_graph(5)
        plots = dual_view_plots(g, added=[(0, 10), (1, 10), (10, 11)])
        # plot(b) heights come only from new edges.
        heights = dict(zip(plots.after.order, plots.after.heights))
        assert heights[2] == 0  # untouched clique vertex zeroed
        assert heights[10] > 0  # new-edge vertex visible

    def test_new_clique_stands_out_in_after_view(self):
        g = complete_graph(6, offset=100)  # old structure
        added = [(u, v) for u in range(4) for v in range(4) if u < v]
        plots = dual_view_plots(g, added=added)
        assert plots.after.max_height == 4  # the new K4
        assert plots.before.max_height == 6

    def test_select_assigns_shared_shapes(self):
        g = complete_graph(4)
        plots = dual_view_plots(g, added=[(0, 9), (1, 9)])
        before_marker, after_marker = plots.select([0, 1, 9], label="evt")
        assert before_marker.shape == after_marker.shape
        assert 9 not in before_marker.vertices  # new vertex absent before
        assert 9 in after_marker.vertices

    def test_locate(self):
        g = complete_graph(4)
        plots = dual_view_plots(g, added=[(0, 9), (1, 9)])
        located = plots.locate([0, 9])
        assert located[0][0] >= 0
        assert located[9][0] == -1  # not in before view
        assert located[9][1] >= 0

    def test_dual_view_svg(self):
        g = complete_graph(4)
        plots = dual_view_plots(g, added=[(0, 9), (1, 9)])
        plots.select([0, 1, 9])
        svg = dual_view_svg(plots)
        assert svg.startswith("<svg")
        assert svg.rstrip().endswith("</svg>")
