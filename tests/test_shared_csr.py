"""The shared-memory CSR substrate (repro.fast.shm) and its transports.

Covers the L1 zero-copy contract end to end: publish/attach round-trips,
the O(descriptor) bytes-shipped guarantee (the whole point of the shm
transport — a worker receives a few hundred bytes no matter how large
the graph is), the pickle fallback, and the lifetime rules — the parent
removes the segment in every exit path, including a SIGKILL'd worker, so
``/dev/shm`` never accumulates ``repro-csr-*`` segments.
"""

from __future__ import annotations

import glob
import pickle

import pytest

from repro.exceptions import BackendError
from repro.fast import CSRGraph, csr_decomposition, parallel_decomposition
from repro.fast import parallel as parallel_mod
from repro.fast import shm as shm_mod
from repro.fast.shm import SEGMENT_PREFIX, SharedCSR, shared_memory_available
from repro.graph import Graph, erdos_renyi

pytestmark = pytest.mark.skipif(
    not shared_memory_available(),
    reason="host lacks multiprocessing.shared_memory",
)


def leaked_segments() -> list:
    return glob.glob(f"/dev/shm/{SEGMENT_PREFIX}*")


@pytest.fixture(autouse=True)
def no_segment_leaks():
    before = set(leaked_segments())
    yield
    after = set(leaked_segments())
    assert after <= before, f"leaked shared-memory segments: {after - before}"


def er(seed: int = 0, n: int = 60, p: float = 0.15) -> Graph:
    return erdos_renyi(n, p, seed=seed)


# ------------------------------------------------------------------ #
# publish / attach round-trip
# ------------------------------------------------------------------ #


class TestRoundTrip:
    def test_attached_csr_is_field_identical(self):
        csr = CSRGraph.from_graph(er(seed=1))
        shared = SharedCSR.publish(csr)
        try:
            mirror = SharedCSR.attach(shared.descriptor)
            twin = mirror.csr()
            assert twin.num_vertices == csr.num_vertices
            assert twin.num_edges == csr.num_edges
            for field in CSRGraph.ARRAY_FIELDS:
                assert list(getattr(twin, field)) == list(getattr(csr, field))
            del twin  # release the memoryview exports before close()
            mirror.close()
        finally:
            shared.close()
            shared.unlink()

    def test_kernels_identical_over_attached_views(self):
        graph = er(seed=2)
        csr = CSRGraph.from_graph(graph)
        shared = SharedCSR.publish(csr)
        try:
            mirror = SharedCSR.attach(shared.descriptor)
            from repro.fast import supports_and_triangles

            assert supports_and_triangles(mirror.csr()) == (
                supports_and_triangles(csr)
            )
        finally:
            shared.close()
            shared.unlink()

    def test_descriptor_is_o1_in_the_graph(self):
        # The acceptance bound: what ships per task is O(shard descriptor),
        # not O(graph).  A 200-vertex graph's payload is tens of KB; its
        # descriptor must stay under 512 bytes.
        csr = CSRGraph.from_graph(er(seed=3, n=200, p=0.3))
        shared = SharedCSR.publish(csr)
        try:
            wire = len(pickle.dumps(shared.descriptor))
            assert wire < 512
            assert shared.nbytes > 50_000
            assert wire * 50 < shared.nbytes
        finally:
            shared.close()
            shared.unlink()

    def test_unlink_removes_the_segment(self):
        shared = SharedCSR.publish(CSRGraph.from_graph(er(seed=4)))
        name = shared.name
        assert f"/dev/shm/{name}" in leaked_segments() or leaked_segments()
        shared.close()
        shared.unlink()
        assert f"/dev/shm/{name}" not in leaked_segments()
        shared.unlink()  # idempotent

    def test_empty_graph_publishes(self):
        shared = SharedCSR.publish(CSRGraph.from_graph(Graph()))
        try:
            mirror = SharedCSR.attach(shared.descriptor)
            twin = mirror.csr()
            assert twin.num_edges == 0
            del twin  # release the memoryview exports before close()
            mirror.close()
        finally:
            shared.close()
            shared.unlink()


# ------------------------------------------------------------------ #
# transports through the pool
# ------------------------------------------------------------------ #


class TestPoolTransports:
    def test_shm_pool_run_ships_only_the_descriptor(self):
        graph = er(seed=5, n=120, p=0.2)
        info: dict = {}
        result = parallel_decomposition(
            graph, workers=2, info=info, transport="shm"
        )
        assert result.kappa == csr_decomposition(graph).kappa
        assert info["transport"] == "shm"
        assert 0 < info["bytes_shipped"] < 1024

    def test_pickle_pool_ships_the_whole_payload(self):
        graph = er(seed=6, n=120, p=0.2)
        info: dict = {}
        result = parallel_decomposition(
            graph, workers=2, info=info, transport="pickle"
        )
        assert result.kappa == csr_decomposition(graph).kappa
        assert info["transport"] == "pickle"
        # O(graph): orders of magnitude beyond any descriptor.
        assert info["bytes_shipped"] > 10_000

    def test_auto_falls_back_when_publish_fails(self, monkeypatch):
        def broken_publish(cls_csr):
            raise OSError("no shm for you")

        monkeypatch.setattr(SharedCSR, "publish", broken_publish)
        graph = er(seed=7)
        info: dict = {}
        result = parallel_decomposition(graph, workers=2, info=info)
        assert info["transport"] == "pickle"
        assert result.kappa == csr_decomposition(graph).kappa

    def test_forced_shm_raises_instead_of_degrading(self, monkeypatch):
        monkeypatch.setattr(SharedCSR, "publish", classmethod(
            lambda cls, csr: (_ for _ in ()).throw(OSError("unavailable"))
        ))
        with pytest.raises(BackendError, match="shared-memory transport"):
            parallel_decomposition(er(seed=8), workers=2, transport="shm")

    def test_unknown_transport_rejected(self):
        with pytest.raises(ValueError, match="unknown transport"):
            parallel_mod.parallel_supports_and_triangles(
                CSRGraph.from_graph(er(seed=9)), workers=2, transport="warp"
            )


# ------------------------------------------------------------------ #
# lifetime under worker crashes
# ------------------------------------------------------------------ #


class TestCrashCleanup:
    def test_sigkilled_worker_leaves_no_segment(self, monkeypatch):
        # Workers die via os._exit before touching the segment; the
        # parent's finally must still remove it (the autouse fixture
        # asserts /dev/shm is clean afterwards as well).
        monkeypatch.setenv(parallel_mod._CRASH_ENV, "1")
        with pytest.raises(BackendError, match="worker process died"):
            parallel_decomposition(er(seed=10), workers=2, transport="shm")
        assert leaked_segments() == []

    def test_attach_never_owns(self):
        shared = SharedCSR.publish(CSRGraph.from_graph(er(seed=11)))
        try:
            mirror = SharedCSR.attach(shared.descriptor)
            mirror.unlink()  # no-op: only the owner may unlink
            assert f"/dev/shm/{shared.name}" in leaked_segments()
            mirror.close()
        finally:
            shared.close()
            shared.unlink()

    def test_gate_reports_unavailable_without_module(self, monkeypatch):
        monkeypatch.setattr(shm_mod, "_shared_memory", None)
        assert not shm_mod.shared_memory_available()
        with pytest.raises(OSError, match="unavailable"):
            SharedCSR.publish(CSRGraph.from_graph(Graph()))
        with pytest.raises(OSError, match="unavailable"):
            SharedCSR.attach({"name": "x", "fields": {}})
