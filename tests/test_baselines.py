"""Tests for the CSV, DN-Graph, recompute and networkx baselines."""

import pytest

from repro.baselines import (
    CSVBaseline,
    RecomputeBaseline,
    bitridn,
    csv_co_clique_sizes,
    greedy_clique,
    is_valid_lambda,
    max_clique,
    networkx_kappa,
    networkx_truss_numbers,
    timed_recompute,
    tridn,
)
from repro.core import DynamicTriangleKCore, triangle_kcore_decomposition
from repro.graph import Graph, complete_graph, erdos_renyi, planted_cliques


class TestMaxClique:
    def test_clique(self):
        assert len(max_clique(complete_graph(6))) == 6

    def test_empty(self):
        assert max_clique(Graph()) == set()

    def test_triangle_free(self):
        g = Graph(edges=[(0, 1), (1, 2), (2, 3)])
        assert len(max_clique(g)) == 2

    def test_planted_clique_found(self):
        planted = planted_cliques(40, [7], background_p=0.05, seed=2)
        clique = max_clique(planted.graph)
        assert set(planted.cliques[0].vertices) <= clique or len(clique) >= 7

    def test_budget_fallback_still_returns_clique(self):
        g = erdos_renyi(40, 0.4, seed=3)
        clique = max_clique(g, node_budget=5)
        for i, u in enumerate(sorted(clique, key=repr)):
            for v in sorted(clique, key=repr)[i + 1 :]:
                assert g.has_edge(u, v)


class TestGreedyClique:
    def test_returns_a_clique(self):
        g = erdos_renyi(30, 0.4, seed=4)
        clique = sorted(greedy_clique(g), key=repr)
        for i, u in enumerate(clique):
            for v in clique[i + 1 :]:
                assert g.has_edge(u, v)

    def test_finds_whole_clique_in_clique(self):
        assert len(greedy_clique(complete_graph(5))) == 5


class TestCSVBaseline:
    def test_clique_co_clique_sizes(self):
        sizes = csv_co_clique_sizes(complete_graph(7))
        assert set(sizes.values()) == {7}

    def test_edge_without_triangles(self):
        g = Graph(edges=[(0, 1)])
        assert csv_co_clique_sizes(g) == {(0, 1): 2}

    def test_estimate_mode_lower_or_equal_exact(self):
        g = erdos_renyi(25, 0.35, seed=5)
        exact = CSVBaseline(mode="exact").co_clique_sizes(g)
        estimate = CSVBaseline(mode="estimate").co_clique_sizes(g)
        assert all(estimate[e] <= exact[e] for e in exact)

    def test_invalid_mode(self):
        with pytest.raises(ValueError):
            CSVBaseline(mode="bogus")

    def test_csv_upper_bounds_triangle_kcore(self):
        """co_clique_size from CSV >= kappa + 2 (a clique of size k+2 is a
        (k)-Triangle K-Core, and CSV measures the true clique)... actually
        the bound runs the other way: kappa + 2 >= true max clique size,
        so CSV exact <= kappa + 2."""
        g = erdos_renyi(30, 0.3, seed=6)
        result = triangle_kcore_decomposition(g)
        csv = csv_co_clique_sizes(g)
        for edge, size in csv.items():
            assert size <= result.kappa[edge] + 2, edge


class TestDNGraph:
    @pytest.mark.parametrize("seed", range(4))
    def test_both_variants_converge_to_kappa(self, seed):
        g = erdos_renyi(35, 0.25, seed=seed)
        kappa = triangle_kcore_decomposition(g).kappa
        assert tridn(g).lambda_ == kappa
        assert bitridn(g).lambda_ == kappa

    def test_bitridn_uses_fewer_or_equal_updates(self):
        g = erdos_renyi(40, 0.3, seed=9)
        t = tridn(g)
        b = bitridn(g)
        assert b.updates <= t.updates

    def test_valid_lambda_check(self, k5):
        kappa = triangle_kcore_decomposition(k5).kappa
        assert is_valid_lambda(k5, kappa)
        inflated = {edge: value + 1 for edge, value in kappa.items()}
        assert not is_valid_lambda(k5, inflated)

    def test_iteration_counts_positive(self, k5):
        assert tridn(k5).iterations >= 1
        assert bitridn(k5).iterations >= 1


class TestNetworkxCrossCheck:
    def test_truss_numbers_offset(self, k5):
        truss = networkx_truss_numbers(k5)
        assert set(truss.values()) == {5}
        assert networkx_kappa(k5) == {e: 3 for e in k5.edges()}

    def test_agreement_on_random_graph(self):
        g = erdos_renyi(40, 0.3, seed=10)
        assert networkx_kappa(g) == triangle_kcore_decomposition(g).kappa


class TestRecomputeBaseline:
    def test_tracks_graph_like_dynamic(self):
        g = erdos_renyi(25, 0.25, seed=11)
        baseline = RecomputeBaseline(g)
        dynamic = DynamicTriangleKCore(g)
        for u, v in [(0, 20), (1, 21), (2, 22)]:
            if not g.has_edge(u, v):
                baseline.add_edge(u, v)
                dynamic.add_edge(u, v)
        assert baseline.kappa == dynamic.kappa

    def test_apply_batch(self):
        g = erdos_renyi(25, 0.25, seed=12)
        baseline = RecomputeBaseline(g)
        removed = list(g.edges())[:3]
        run = baseline.apply(removed=removed)
        assert run.seconds >= 0
        assert baseline.kappa == triangle_kcore_decomposition(baseline.graph).kappa

    def test_timed_recompute(self, k5):
        run = timed_recompute(k5)
        assert run.seconds >= 0
        assert run.result.max_kappa == 3

    def test_copy_semantics(self):
        g = complete_graph(4)
        baseline = RecomputeBaseline(g)
        baseline.remove_edge(0, 1)
        assert g.has_edge(0, 1)


class TestMaximalCliqueEnumeration:
    def test_enumerates_all_maximal_cliques_of_clique(self):
        from repro.baselines.csv_baseline import enumerate_maximal_cliques

        cliques = enumerate_maximal_cliques(complete_graph(5))
        assert len(cliques) == 1
        assert cliques[0] == set(range(5))

    def test_bowtie_has_two_maximal_triangles(self):
        from repro.baselines.csv_baseline import enumerate_maximal_cliques

        g = Graph(edges=[(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (2, 4)])
        cliques = sorted(enumerate_maximal_cliques(g), key=sorted)
        assert {0, 1, 2} in cliques
        assert {2, 3, 4} in cliques

    def test_matches_networkx_enumeration(self):
        import networkx as nx

        from repro.baselines.csv_baseline import enumerate_maximal_cliques
        from repro.graph.convert import to_networkx

        g = erdos_renyi(20, 0.35, seed=13)
        ours = {frozenset(c) for c in enumerate_maximal_cliques(g)}
        theirs = {frozenset(c) for c in nx.find_cliques(to_networkx(g))}
        assert ours == theirs

    def test_budget_truncates_gracefully(self):
        from repro.baselines.csv_baseline import enumerate_maximal_cliques

        g = erdos_renyi(25, 0.5, seed=14)
        some = enumerate_maximal_cliques(g, node_budget=10)
        full = enumerate_maximal_cliques(g)
        assert len(some) <= len(full)
