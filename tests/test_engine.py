"""Tests for the unified decomposition engine (repro.engine).

Covers the three engine concerns — backend registry/dispatch, the
version-keyed artifact cache, and instrumentation — plus the graph
mutation counter they hang off, the dynamic snapshot strategy, the
perturb-and-revert context, and the module-level default engine.
"""

import json

import pytest

from repro.core import triangle_kcore_decomposition
from repro.engine import (
    BACKENDS,
    Engine,
    decompose,
    get_default_engine,
    resolve_engine,
    set_default_engine,
)
from repro.engine.stats import STATS_SCHEMA, EngineStats
from repro.exceptions import ReproError
from repro.graph import Graph
from repro.graph.undirected import complete_graph


@pytest.fixture
def kite():
    """Two triangles sharing edge (1, 2) plus a pendant edge."""
    return Graph(edges=[(0, 1), (0, 2), (1, 2), (1, 3), (2, 3), (3, 4)])


# ---------------------------------------------------------------------- #
# Graph.version
# ---------------------------------------------------------------------- #


class TestGraphVersion:
    def test_starts_at_zero(self):
        assert Graph().version == 0

    def test_every_mutation_bumps(self):
        g = Graph()
        v = g.version
        g.add_vertex(0)
        assert g.version > v
        v = g.version
        g.add_edge(0, 1)
        assert g.version > v
        v = g.version
        g.remove_edge(0, 1)
        assert g.version > v
        v = g.version
        g.remove_vertex(0)
        assert g.version > v
        v = g.version
        g.clear()
        assert g.version > v

    def test_noop_mutators_do_not_bump(self):
        g = Graph(edges=[(0, 1)])
        v = g.version
        g.add_vertex(0)  # already present
        g.add_edge(0, 1, exist_ok=True)  # already present
        assert g.version == v

    def test_reads_do_not_bump(self, kite):
        v = kite.version
        kite.has_edge(0, 1)
        list(kite.edges())
        list(kite.neighbors(1))
        kite.subgraph([0, 1, 2])
        assert kite.version == v

    def test_copy_is_independent(self, kite):
        clone = kite.copy()
        before = kite.version
        clone.add_edge(90, 91)
        assert kite.version == before


# ---------------------------------------------------------------------- #
# dispatch + registry
# ---------------------------------------------------------------------- #


class TestDispatch:
    def test_builtin_backends_listed(self):
        engine = Engine()
        assert set(BACKENDS) <= set(engine.backends())

    @pytest.mark.parametrize("backend", ["reference", "csr", "dynamic"])
    def test_backends_agree_with_reference(self, kite, backend):
        expected = triangle_kcore_decomposition(kite).kappa
        assert Engine().decompose(kite, backend=backend).kappa == expected

    def test_auto_resolves_to_concrete_backend(self, kite):
        engine = Engine()
        assert engine.resolve("auto", kite) in ("reference", "csr")
        assert engine.resolve(None, kite) in ("reference", "csr")

    def test_auto_with_membership_degrades_to_reference(self, kite):
        assert Engine().resolve("auto", kite, store_membership=True) == "reference"

    def test_unknown_backend_rejected(self, kite):
        engine = Engine()
        with pytest.raises(ValueError, match="unknown backend"):
            engine.decompose(kite, backend="gpu")
        with pytest.raises(ValueError, match="unknown backend"):
            engine.default_backend = "gpu"

    @pytest.mark.parametrize("backend", ["csr", "dynamic"])
    def test_membership_rejected_off_reference(self, kite, backend):
        with pytest.raises(ValueError, match="membership"):
            Engine().decompose(kite, backend=backend, store_membership=True)

    def test_register_custom_backend(self, kite):
        engine = Engine()
        calls = []

        def constant(engine_, graph, store_membership):
            calls.append(graph)
            return triangle_kcore_decomposition(graph)

        engine.register_backend("traced", constant)
        assert "traced" in engine.backends()
        result = engine.decompose(kite, backend="traced")
        assert calls == [kite]
        assert result.kappa == triangle_kcore_decomposition(kite).kappa

    def test_register_rejects_auto_and_duplicates(self):
        engine = Engine()
        fn = lambda e, g, m: None  # noqa: E731
        with pytest.raises(ValueError):
            engine.register_backend("auto", fn)
        engine.register_backend("mine", fn)
        with pytest.raises(ValueError, match="already registered"):
            engine.register_backend("mine", fn)
        engine.register_backend("mine", fn, replace=True)  # explicit ok

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            Engine(max_cached_graphs=-1)
        with pytest.raises(ValueError):
            Engine(dynamic_strategy="sometimes")
        with pytest.raises(ValueError):
            Engine(default_backend="gpu")


# ---------------------------------------------------------------------- #
# artifact cache
# ---------------------------------------------------------------------- #


class TestCache:
    def test_repeat_decompose_is_same_object(self, kite):
        engine = Engine()
        first = engine.decompose(kite)
        assert engine.decompose(kite) is first
        assert engine.stats.cache_hits == 1

    def test_mutation_invalidates(self, kite):
        engine = Engine()
        stale = engine.decompose(kite)
        kite.add_edge(0, 3)  # closes two new triangles
        fresh = engine.decompose(kite)
        assert fresh is not stale
        assert fresh.kappa == triangle_kcore_decomposition(kite).kappa

    def test_backend_name_is_part_of_the_key(self, kite):
        engine = Engine()
        ref = engine.decompose(kite, backend="reference")
        csr = engine.decompose(kite, backend="csr")
        assert ref is not csr
        assert engine.decompose(kite, backend="reference") is ref
        assert engine.decompose(kite, backend="csr") is csr

    def test_use_cache_false_bypasses_both_ways(self, kite):
        engine = Engine()
        cached = engine.decompose(kite)
        uncached = engine.decompose(kite, use_cache=False)
        assert uncached is not cached
        assert engine.decompose(kite) is cached  # did not overwrite

    def test_zero_capacity_disables_caching(self, kite):
        engine = Engine(max_cached_graphs=0)
        assert engine.decompose(kite) is not engine.decompose(kite)
        assert engine.cached_artifact_count() == 0

    def test_lru_eviction_bounds_graph_count(self):
        engine = Engine(max_cached_graphs=2)
        graphs = [complete_graph(4) for _ in range(3)]
        for g in graphs:
            engine.decompose(g)
        # Oldest graph evicted: recomputing it misses.
        first = engine.decompose(graphs[0])
        assert engine.stats.cache_misses == 4

    def test_invalidate_specific_and_all(self, kite):
        engine = Engine()
        r = engine.decompose(kite)
        engine.invalidate(kite)
        assert engine.decompose(kite) is not r
        engine.triangles(kite)
        engine.invalidate()
        assert engine.cached_artifact_count() == 0

    def test_secondary_artifacts_cached(self, kite):
        engine = Engine()
        assert engine.triangles(kite) is engine.triangles(kite)
        assert engine.triangle_supports(kite) is engine.triangle_supports(kite)
        assert engine.count_triangles(kite) == 2
        supports = engine.triangle_supports(kite)
        assert supports[(0, 1)] == 1 and supports[(1, 2)] == 2

    def test_dead_graph_entries_are_not_served_by_id_reuse(self):
        # Force the id()-reuse hazard deterministically: drop the entry's
        # weak referent, then hand the engine a *different* graph whose
        # cache slot collides (we simulate by patching the entry's ref).
        engine = Engine()
        g = complete_graph(4)
        engine.decompose(g)
        entry = engine._cache[id(g)]
        other = complete_graph(5)
        entry.ref = lambda: None  # referent died
        engine._cache[id(other)] = engine._cache.pop(id(g))
        fresh = engine.decompose(other)
        assert fresh.kappa == triangle_kcore_decomposition(other).kappa


# ---------------------------------------------------------------------- #
# dynamic strategy
# ---------------------------------------------------------------------- #


class TestDynamicBackend:
    def test_snapshot_sequence_matches_reference(self):
        engine = Engine()
        g = Graph(edges=[(0, 1), (1, 2), (0, 2)])
        snapshots = []
        for extra in [(2, 3), (1, 3), (0, 3), (3, 4)]:
            g.add_edge(*extra)
            snapshots.append(g.copy())
        for snap in snapshots:
            got = engine.decompose(snap, backend="dynamic", use_cache=False)
            want = triangle_kcore_decomposition(snap).kappa
            assert got.kappa == want
        counters = engine.stats.counters
        assert counters["dynamic_cold_starts"] == 1
        assert counters["dynamic_updates"] == len(snapshots) - 1

    def test_handles_deletions_between_snapshots(self):
        engine = Engine()
        g = complete_graph(6)
        assert engine.decompose(g, backend="dynamic").max_kappa == 4
        g2 = g.copy()
        g2.remove_edge(0, 1)
        got = engine.decompose(g2, backend="dynamic")
        assert got.kappa == triangle_kcore_decomposition(g2).kappa

    def test_reset_dynamic_cold_starts_again(self, kite):
        engine = Engine()
        engine.decompose(kite, backend="dynamic", use_cache=False)
        engine.reset_dynamic()
        engine.decompose(kite, backend="dynamic", use_cache=False)
        assert engine.stats.counters["dynamic_cold_starts"] == 2

    def test_maintainer_counts_and_isolates(self, kite):
        engine = Engine()
        m = engine.maintainer(kite)
        m.add_edge(0, 4)
        assert not kite.has_edge(0, 4)  # copy=True isolates the base graph
        assert engine.stats.counters["maintainers_built"] == 1


class TestPerturbed:
    def test_perturbed_applies_and_reverts(self):
        engine = Engine()
        g = complete_graph(5)
        baseline = triangle_kcore_decomposition(g).kappa
        with engine.perturbed(g, removed=((0, 1),)) as m:
            assert not m.graph.has_edge(0, 1)
            inside = dict(m.kappa)
        g_removed = g.copy()
        g_removed.remove_edge(0, 1)
        assert inside == triangle_kcore_decomposition(g_removed).kappa
        # Reverted: a second perturbation sees the pristine state again.
        with engine.perturbed(g, added=((0, 9), (1, 9))) as m:
            assert m.graph.has_edge(0, 1)
        assert not g.has_edge(0, 9)  # base graph itself never touched
        with engine.perturbed(g) as m:
            assert dict(m.kappa) == baseline

    def test_perturbed_reverts_on_exception(self):
        engine = Engine()
        g = complete_graph(4)
        with pytest.raises(RuntimeError):
            with engine.perturbed(g, removed=((0, 1),)):
                raise RuntimeError("boom")
        with engine.perturbed(g) as m:
            assert dict(m.kappa) == triangle_kcore_decomposition(g).kappa

    def test_warm_maintainer_reused_until_base_mutates(self):
        engine = Engine()
        g = complete_graph(5)
        with engine.perturbed(g, removed=((0, 1),)):
            pass
        with engine.perturbed(g, removed=((2, 3),)):
            pass
        assert engine.stats.counters["perturb_cold_starts"] == 1
        g.add_edge(0, 99)
        with engine.perturbed(g, removed=((0, 1),)) as m:
            assert m.graph.has_edge(0, 99)
        assert engine.stats.counters["perturb_cold_starts"] == 2

    def test_diff_decompose_returns_delta_and_reverts(self):
        engine = Engine()
        g = Graph(edges=[(0, 1), (1, 2), (0, 2)])
        delta = engine.diff_decompose(g, added=((0, 3), (1, 3)))
        assert not delta.is_empty
        assert (0, 3) in delta.created and (1, 3) in delta.created
        # Base state restored: an empty diff reports no change.
        assert engine.diff_decompose(g).is_empty


# ---------------------------------------------------------------------- #
# instrumentation
# ---------------------------------------------------------------------- #


class TestStats:
    def test_payload_shape_and_json(self, kite):
        engine = Engine()
        engine.decompose(kite, backend="reference")
        engine.decompose(kite, backend="reference")
        payload = engine.stats_dict()
        assert payload["schema"] == STATS_SCHEMA
        assert payload["backend_calls"] == {"reference": 1}
        assert payload["counters"]["cache_hits"] == 1
        assert payload["counters"]["decompositions"] == 1
        assert "decompose.reference" in payload["stage_seconds"]
        assert payload["cached_graphs"] == 1
        json.dumps(payload)  # must be serializable as-is

    def test_peel_counters_surface(self, kite):
        for backend in ("reference", "csr"):
            engine = Engine()
            engine.decompose(kite, backend=backend)
            counters = engine.stats.counters
            assert counters["triangles_enumerated"] == 2
            assert counters["edges_peeled"] == kite.num_edges
            assert counters["support_sum"] == 6
            # support_sum - sum(kappa): kappa is 1 on the 5 triangle edges.
            assert counters["bucket_decrements"] == 1

    def test_reset(self, kite):
        engine = Engine()
        engine.decompose(kite)
        engine.reset_stats()
        assert engine.stats.counters == {}
        assert engine.stats.backend_calls == {}

    def test_engine_stats_standalone(self):
        stats = EngineStats()
        stats.bump("x")
        stats.bump("x", 2)
        with stats.stage("s"):
            pass
        payload = stats.as_dict()
        assert payload["counters"] == {"x": 3}
        assert "s" in payload["stage_seconds"]


# ---------------------------------------------------------------------- #
# module-level default
# ---------------------------------------------------------------------- #


class TestDefaultEngine:
    def teardown_method(self):
        set_default_engine(None)

    def test_default_is_lazy_singleton(self):
        set_default_engine(None)
        assert get_default_engine() is get_default_engine()

    def test_set_and_resolve(self):
        mine = Engine()
        set_default_engine(mine)
        assert get_default_engine() is mine
        assert resolve_engine(None) is mine
        other = Engine()
        assert resolve_engine(other) is other

    def test_set_rejects_non_engine(self):
        with pytest.raises(ReproError):
            set_default_engine(object())

    def test_module_level_decompose(self, kite):
        mine = Engine()
        result = decompose(kite, engine=mine)
        assert result.kappa == triangle_kcore_decomposition(kite).kappa
        assert mine.stats.counters["decompositions"] == 1

    def test_consumers_share_the_default_cache(self, kite):
        from repro.core import CommunityIndex

        mine = Engine()
        set_default_engine(mine)
        first = mine.decompose(kite)
        index = CommunityIndex(kite)  # no engine threaded: uses default
        assert index.result is first
        assert mine.stats.cache_hits == 1
