"""Tests for community evolution tracking."""

import pytest

from repro.analysis import (
    TrackedCommunity,
    Transition,
    snapshot_communities,
    track_communities,
)
from repro.graph import Graph, SnapshotStream, complete_graph


def clique_edges(members):
    return [(u, v) for i, u in enumerate(members) for v in members[i + 1 :]]


def graph_of(*cliques, extra=()):
    g = Graph()
    for members in cliques:
        for u, v in clique_edges(members):
            g.add_edge(u, v, exist_ok=True)
    for u, v in extra:
        g.add_edge(u, v, exist_ok=True)
    return g


class TestSnapshotCommunities:
    def test_finds_planted_cliques(self):
        g = graph_of(list(range(8)), list(range(100, 106)))
        communities = snapshot_communities(g, 0, min_kappa=2)
        sizes = sorted(c.size for c in communities)
        assert sizes == [6, 8]
        assert all(c.snapshot == 0 for c in communities)

    def test_max_communities_cap(self):
        g = graph_of(*[list(range(i * 10, i * 10 + 4)) for i in range(6)])
        communities = snapshot_communities(g, 0, min_kappa=2, max_communities=3)
        assert len(communities) == 3


class TestTransitions:
    def test_continue(self):
        g = graph_of(list(range(8)))
        stream = SnapshotStream([g, g.copy()])
        timeline = track_communities(stream)
        assert timeline.summary() == {"continue": 1}

    def test_grow(self):
        before = graph_of(list(range(6)))
        after = graph_of(list(range(9)))
        timeline = track_communities(SnapshotStream([before, after]))
        assert timeline.summary() == {"grow": 1}
        event = timeline.events("grow")[0]
        assert event.before[0].size == 6
        assert event.after[0].size == 9

    def test_shrink(self):
        before = graph_of(list(range(9)))
        after = graph_of(list(range(6)), extra=[(6, 100), (7, 100), (8, 100)])
        timeline = track_communities(SnapshotStream([before, after]))
        assert "shrink" in timeline.summary()

    def test_merge(self):
        before = graph_of(list(range(6)), list(range(10, 16)))
        after = graph_of(list(range(6)) + list(range(10, 16)))
        timeline = track_communities(SnapshotStream([before, after]))
        merges = timeline.events("merge")
        assert merges
        assert len(merges[0].before) == 2
        assert merges[0].after[0].size == 12

    def test_split(self):
        before = graph_of(list(range(12)))
        after = graph_of(list(range(6)), list(range(6, 12)))
        timeline = track_communities(SnapshotStream([before, after]))
        splits = timeline.events("split")
        assert splits
        assert len(splits[0].after) == 2

    def test_form_and_dissolve(self):
        before = graph_of(list(range(6)))
        after = graph_of(list(range(100, 106)))
        timeline = track_communities(SnapshotStream([before, after]))
        summary = timeline.summary()
        assert summary.get("form") == 1
        assert summary.get("dissolve") == 1

    def test_multi_step_stream(self):
        g0 = graph_of(list(range(6)))
        g1 = graph_of(list(range(8)))
        g2 = graph_of(list(range(8)), list(range(50, 55)))
        timeline = track_communities(SnapshotStream([g0, g1, g2]))
        kinds_by_step = {}
        for transition in timeline.transitions:
            kinds_by_step.setdefault(transition.snapshot, []).append(
                transition.kind
            )
        assert "grow" in kinds_by_step[1]
        assert "form" in kinds_by_step[2]

    def test_events_filter(self):
        g = graph_of(list(range(8)))
        timeline = track_communities(SnapshotStream([g, g.copy()]))
        assert timeline.events("merge") == []
        assert len(timeline.events()) == 1

    def test_wiki_case_study_merges_detected(self):
        from repro.datasets import load

        dataset = load("wiki_snapshots")
        timeline = track_communities(
            SnapshotStream(dataset.snapshots), min_kappa=3
        )
        assert timeline.events("merge"), "topic merges must register"


class TestRepr:
    def test_transition_repr(self):
        community = TrackedCommunity(0, 3, frozenset({1, 2, 3, 4, 5}))
        transition = Transition("form", 1, (), (community,))
        assert "form" in repr(transition)
        assert "[5]" in repr(transition)
