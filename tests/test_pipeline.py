"""End-to-end pipeline tests: chaining the whole toolkit on one dataset."""

import json
import re

import pytest

from repro.core import (
    CommunityHierarchy,
    CommunityIndex,
    DynamicTriangleKCore,
    kappa_bounds,
    load_result,
    max_triangle_kcore,
    save_result,
    triangle_kcore_decomposition,
)
from repro.datasets import load
from repro.viz import (
    decomposition_report,
    density_plot,
    explorer_html,
    render,
)


class TestKarateEndToEnd:
    """One dataset through every major stage of the library."""

    @pytest.fixture(scope="class")
    def karate(self):
        return load("karate")

    def test_full_chain(self, karate, tmp_path):
        graph = karate.graph

        # 1. decompose + persist + reload
        result = triangle_kcore_decomposition(graph)
        path = tmp_path / "karate.json"
        save_result(result, path)
        reloaded = load_result(path)
        assert reloaded.kappa == result.kappa

        # 2. the densest structure agrees across three access paths
        k_top, core = max_triangle_kcore(graph)
        assert k_top == result.max_kappa
        index = CommunityIndex(graph, reloaded)
        hierarchy = CommunityHierarchy(graph, reloaded)
        densest_leaf = hierarchy.densest_leaves()[0]
        assert densest_leaf.level == k_top
        assert densest_leaf.vertices == set(core.vertices())

        # 3. local bounds agree with the global answer
        some_edge = next(iter(core.edges()))
        lower, upper = kappa_bounds(graph, *some_edge, radius=2, sweeps=2)
        assert lower <= result.kappa[some_edge] <= upper

        # 4. visualization artifacts build from the same result
        plot = density_plot(graph, reloaded, title="karate")
        assert render(plot)
        html = decomposition_report(graph, reloaded).render()
        assert "<svg" in html
        explorer = explorer_html(plot)
        payload = json.loads(
            re.search(r"const PLOT_DATA = (\{.*?\});", explorer).group(1)
        )
        assert len(payload["order"]) == graph.num_vertices

        # 5. dynamic edits keep everything consistent
        maintainer = DynamicTriangleKCore(graph)
        edge = sorted(graph.edges(), key=repr)[0]
        maintainer.remove_edge(*edge)
        maintainer.add_edge(*edge)
        assert maintainer.kappa == result.kappa


class TestPerformanceSmoke:
    """Generous wall-clock budgets to catch order-of-magnitude regressions."""

    def test_decomposition_speed_floor(self):
        import time

        graph = load("wiki").graph  # ~30k edges
        start = time.perf_counter()
        triangle_kcore_decomposition(graph)
        assert time.perf_counter() - start < 10.0

    def test_dynamic_update_speed_floor(self):
        import time

        graph = load("epinions").graph
        maintainer = DynamicTriangleKCore(graph)
        from repro.graph import random_edge_sample, random_non_edges

        removed = random_edge_sample(graph, 0.005, seed=1)
        added = random_non_edges(graph, len(removed), seed=2)
        start = time.perf_counter()
        maintainer.apply(added=added, removed=removed)
        assert time.perf_counter() - start < 10.0

    def test_community_index_speed_floor(self):
        import time

        graph = load("ppi").graph
        start = time.perf_counter()
        CommunityIndex(graph)
        assert time.perf_counter() - start < 10.0
