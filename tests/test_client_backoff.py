"""Unit tests for ServiceClient's bounded-exponential backpressure backoff.

No sockets: ``_exchange`` (the raw request/response cycle) and
``_sleep`` are stubbed, so these pin exactly the retry *policy* — which
rejections are retried, how long each wait is, whose estimate wins
(server ``Retry-After`` vs the exponential schedule), and where the caps
bind.
"""

import pytest

from repro.service.client import (
    ServiceClient,
    ServiceClientError,
    ServiceOverloadError,
)


def make_client(**kwargs) -> ServiceClient:
    client = ServiceClient("127.0.0.1", 1, **kwargs)
    client._sleep = lambda seconds: None  # tests assert via backoff_sleeps
    return client


def overload(code: str, retry_after=None) -> ServiceOverloadError:
    return ServiceOverloadError(503, code, "busy", retry_after=retry_after)


def script_exchanges(client: ServiceClient, outcomes):
    """Queue exchange outcomes: exceptions raise, anything else returns."""
    remaining = list(outcomes)
    calls = []

    def fake_exchange(method, path, *, body=None):
        calls.append((method, path, body))
        outcome = remaining.pop(0)
        if isinstance(outcome, BaseException):
            raise outcome
        return outcome

    client._exchange = fake_exchange
    return calls


class TestBackoffPolicy:
    def test_default_client_does_not_retry(self):
        client = make_client()
        script_exchanges(client, [overload("overloaded", retry_after=0.5)])
        with pytest.raises(ServiceOverloadError):
            client.request("GET", "/healthz")
        assert client.backoff_sleeps == []

    def test_retries_then_succeeds(self):
        client = make_client(backoff_retries=3)
        calls = script_exchanges(
            client,
            [overload("overloaded"), overload("timed_out"), (200, {"ok": True})],
        )
        status, doc = client.request("GET", "/healthz")
        assert (status, doc) == (200, {"ok": True})
        assert len(calls) == 3
        assert len(client.backoff_sleeps) == 2

    def test_exhausted_retries_reraise_the_last_rejection(self):
        client = make_client(backoff_retries=2)
        calls = script_exchanges(client, [overload("overloaded")] * 3)
        with pytest.raises(ServiceOverloadError):
            client.request("GET", "/healthz")
        assert len(calls) == 3  # initial attempt + 2 retries
        assert len(client.backoff_sleeps) == 2  # no sleep after the last

    def test_exponential_schedule_doubles_and_caps(self):
        client = make_client(
            backoff_retries=5, backoff_base=0.1, backoff_max=0.45
        )
        script_exchanges(client, [overload("overloaded")] * 6)
        with pytest.raises(ServiceOverloadError):
            client.request("GET", "/healthz")
        assert client.backoff_sleeps == pytest.approx(
            [0.1, 0.2, 0.4, 0.45, 0.45]
        )

    def test_server_retry_after_wins_over_schedule(self):
        client = make_client(backoff_retries=2, backoff_base=1.0)
        script_exchanges(
            client,
            [overload("overloaded", retry_after=0.01), (200, {})],
        )
        client.request("GET", "/healthz")
        assert client.backoff_sleeps == pytest.approx([0.01])

    def test_retry_after_is_still_capped(self):
        client = make_client(backoff_retries=1, backoff_max=0.2)
        script_exchanges(
            client,
            [overload("overloaded", retry_after=60.0), (200, {})],
        )
        client.request("GET", "/healthz")
        assert client.backoff_sleeps == pytest.approx([0.2])

    def test_rate_limited_is_not_retried_by_default(self):
        # 429 rate_limited means "you, specifically, slow down" — backing
        # off and retrying would defeat the limiter, so it propagates.
        client = make_client(backoff_retries=5)
        calls = script_exchanges(client, [overload("rate_limited")])
        with pytest.raises(ServiceOverloadError) as excinfo:
            client.request("GET", "/healthz")
        assert excinfo.value.code == "rate_limited"
        assert len(calls) == 1
        assert client.backoff_sleeps == []

    def test_custom_backoff_codes(self):
        client = make_client(
            backoff_retries=1, backoff_codes=("rate_limited",)
        )
        script_exchanges(client, [overload("rate_limited"), (200, {})])
        client.request("GET", "/healthz")
        assert len(client.backoff_sleeps) == 1

    def test_non_overload_errors_propagate_immediately(self):
        client = make_client(backoff_retries=5)
        calls = script_exchanges(
            client, [ServiceClientError(404, "not_found", "nope")]
        )
        with pytest.raises(ServiceClientError):
            client.request("GET", "/healthz")
        assert len(calls) == 1

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            ServiceClient("h", 1, backoff_retries=-1)
        with pytest.raises(ValueError):
            ServiceClient("h", 1, backoff_base=0)
        with pytest.raises(ValueError):
            ServiceClient("h", 1, backoff_base=2.0, backoff_max=1.0)

    def test_sleeps_accumulate_across_requests(self):
        client = make_client(backoff_retries=1)
        script_exchanges(
            client,
            [overload("overloaded"), (200, {}), overload("timed_out"), (200, {})],
        )
        client.request("GET", "/a")
        client.request("GET", "/b")
        assert len(client.backoff_sleeps) == 2


class TestLastVersionTracking:
    def test_last_version_rides_responses_monotonically(self):
        client = make_client()
        script_exchanges(
            client,
            [(200, {"version": 4}), (200, {"version": 2}), (200, {"ok": 1})],
        )
        # last_version is maintained inside _exchange, which is stubbed
        # here — emulate what the real exchange does to pin the contract.
        for _ in range(3):
            _status, doc = client.request("GET", "/healthz")
            seen = doc.get("version")
            if isinstance(seen, int) and seen > client.last_version:
                client.last_version = seen
        assert client.last_version == 4

    def test_fenced_paths_compose(self):
        from repro.service.client import _fenced

        assert _fenced("/healthz", None) == "/healthz"
        assert _fenced("/healthz", 7) == "/healthz?min_version=7"
        assert _fenced("/kappa?u=1&v=2", 7) == "/kappa?u=1&v=2&min_version=7"
