"""Tests for the top-down maximal Triangle K-Core search."""

import pytest

from repro.core import (
    erode_to_triangle_kcore,
    level_subgraph,
    max_triangle_kcore,
    triangle_kcore_decomposition,
)
from repro.graph import Graph, complete_graph, erdos_renyi, planted_cliques


class TestErosion:
    def test_clique_levels(self):
        g = complete_graph(5)
        assert erode_to_triangle_kcore(g, 3).num_edges == 10
        assert erode_to_triangle_kcore(g, 4).num_edges == 0

    def test_level_zero_drops_isolated_vertices(self):
        g = Graph(edges=[(0, 1)], vertices=[9])
        eroded = erode_to_triangle_kcore(g, 0)
        assert not eroded.has_vertex(9)
        assert eroded.has_edge(0, 1)

    def test_matches_level_subgraph(self):
        g = erdos_renyi(35, 0.3, seed=4)
        result = triangle_kcore_decomposition(g)
        for k in range(result.max_kappa + 2):
            eroded = erode_to_triangle_kcore(g, k)
            expected = level_subgraph(g, result, k)
            assert set(eroded.edges()) == set(expected.edges()), k

    def test_precomputed_core_numbers_equivalent(self):
        from repro.core import kcore_decomposition

        g = erdos_renyi(35, 0.3, seed=5)
        cores = kcore_decomposition(g)
        for k in (1, 2, 3):
            a = erode_to_triangle_kcore(g, k)
            b = erode_to_triangle_kcore(g, k, core_numbers=cores)
            assert a == b


class TestMaxCore:
    @pytest.mark.parametrize("seed", range(5))
    def test_matches_full_decomposition(self, seed):
        g = erdos_renyi(35, 0.25, seed=seed)
        k, sub = max_triangle_kcore(g)
        result = triangle_kcore_decomposition(g)
        assert k == result.max_kappa
        assert set(sub.edges()) == set(level_subgraph(g, result, k).edges())

    def test_planted_clique_found(self):
        planted = planted_cliques(200, [11], background_p=0.02, seed=6)
        k, sub = max_triangle_kcore(planted.graph)
        assert k == 9
        assert set(planted.cliques[0].vertices) == set(sub.vertices())

    def test_triangle_free_graph(self):
        g = Graph(edges=[(0, 1), (1, 2), (2, 3)])
        k, sub = max_triangle_kcore(g)
        assert k == 0
        assert sub.num_edges == 3

    def test_empty_graph(self):
        k, sub = max_triangle_kcore(Graph())
        assert k == 0
        assert sub.num_edges == 0

    def test_isolated_vertices_only(self):
        k, sub = max_triangle_kcore(Graph(vertices=[1, 2, 3]))
        assert k == 0
        assert sub.num_vertices == 0
