"""Fault injection for the replication tier.

Two layers of faults:

* **wire faults** — a scripted fake writer feeds a real
  :class:`ReplicaServer` corrupt-CRC frames, truncated frames, and
  malformed snapshots; every one must surface as a *typed* fault counter
  on the replica (never a silent partial apply) and the replica must
  resync to the correct state on reconnect;
* **crash faults** — real OS processes (``serve --role ...``) are
  SIGKILLed: a killed replica rejoins via snapshot + catch-up and
  converges; a killed writer leaves replicas serving reads stamped with
  ``answered_at_version`` while writes through the router fail with a
  typed 502.
"""

import socket
import threading
import time

import pytest

from repro.graph import Graph, complete_graph
from repro.replication import (
    KIND_COMMIT,
    KIND_HELLO,
    KIND_SNAPSHOT,
    ReplicaServer,
    ReplicaState,
    WriterState,
    encode_frame,
)
from repro.replication.frames import HEADER_BYTES, decode_header, decode_payload
from repro.service import ServiceClientError
from repro.service.server import BackgroundServer
from repro.testing.editscript import EditScript


def make_fixture_graph() -> Graph:
    g = complete_graph(5)
    g.add_edge(0, 10)
    g.add_edge(1, 10)
    g.add_edge(10, 11)
    g.add_vertex(99)
    return g


# --------------------------------------------------------------------- #
# scripted fake writer
# --------------------------------------------------------------------- #


def recv_exact(conn: socket.socket, n: int) -> bytes:
    chunks = b""
    while len(chunks) < n:
        piece = conn.recv(n - len(chunks))
        if not piece:
            raise ConnectionResetError("peer closed")
        chunks += piece
    return chunks


def read_hello(conn: socket.socket) -> dict:
    header = recv_exact(conn, HEADER_BYTES)
    kind, length, crc = decode_header(header)
    payload = decode_payload(kind, recv_exact(conn, length), crc)
    assert kind == KIND_HELLO
    return payload


class FakeWriter:
    """A feed socket whose behaviour is scripted per accepted connection.

    ``handlers[i]`` runs for the i-th connection; extra connections
    re-run the last handler.  Each handler gets ``(conn, hello)`` after
    the HELLO frame has been read, and the connection is closed when it
    returns (unless it returns ``"hold"``, in which case the socket stays
    open until the fake writer shuts down).
    """

    def __init__(self, handlers) -> None:
        self.handlers = list(handlers)
        self.hellos = []
        self._server = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._server.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._server.bind(("127.0.0.1", 0))
        self._server.listen(8)
        self.port = self._server.getsockname()[1]
        self._held = []
        self._accepted = 0
        self._stopping = threading.Event()
        self._thread = threading.Thread(target=self._accept_loop, daemon=True)
        self._thread.start()

    def _accept_loop(self) -> None:
        while not self._stopping.is_set():
            try:
                self._server.settimeout(0.2)
                conn, _addr = self._server.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            index = min(self._accepted, len(self.handlers) - 1)
            self._accepted += 1
            try:
                hello = read_hello(conn)
                self.hellos.append(hello)
                verdict = self.handlers[index](conn, hello)
            except (ConnectionResetError, BrokenPipeError, OSError):
                verdict = None
            if verdict == "hold":
                self._held.append(conn)
            else:
                try:
                    conn.close()
                except OSError:
                    pass

    @property
    def connections(self) -> int:
        return self._accepted

    def stop(self) -> None:
        self._stopping.set()
        for conn in self._held:
            try:
                conn.close()
            except OSError:
                pass
        try:
            self._server.close()
        except OSError:
            pass
        self._thread.join(timeout=10)

    def __enter__(self) -> "FakeWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()


def start_replica(port: int) -> BackgroundServer:
    return BackgroundServer(
        state=ReplicaState(),
        server_cls=ReplicaServer,
        writer_host="127.0.0.1",
        writer_port=port,
        reconnect_min=0.02,
        fence_timeout=1.0,
    ).start()


def wait_until(predicate, timeout: float = 20.0, message: str = "condition"):
    deadline = time.monotonic() + timeout
    while not predicate():
        if time.monotonic() >= deadline:
            raise TimeoutError(f"timed out waiting for {message}")
        time.sleep(0.01)


def scripted_writer_material():
    """A real writer state, its snapshot, and the commits that follow it."""
    ws = WriterState(make_fixture_graph())
    snapshot = ws.snapshot_document()
    ws.apply_edits(EditScript.from_json_obj(
        {"ops": [["add", 2, 10], ["add", 3, 10]]}
    ))
    ws.apply_edits(EditScript.from_json_obj({"ops": [["remove", 10, 11]]}))
    records = ws.log.tail_since(snapshot["version"])
    assert records, "fixture edits must produce commit records"
    return ws, snapshot, records


class TestWireFaults:
    def test_corrupt_crc_is_typed_and_replica_resyncs(self):
        ws, snapshot, records = scripted_writer_material()
        good_commits = [encode_frame(KIND_COMMIT, r.to_payload()) for r in records]
        corrupt = bytearray(good_commits[0])
        corrupt[-1] ^= 0xFF

        def poisoned(conn, hello):
            conn.sendall(encode_frame(KIND_SNAPSHOT, snapshot))
            conn.sendall(bytes(corrupt))
            # Leave the socket to the replica: it must abort on the CRC
            # mismatch, not keep reading.
            return "hold"

        def healthy(conn, hello):
            # The replica survived the fault initialized at the snapshot
            # version and asks to resume from there.
            assert hello["initialized"] is True
            assert hello["version"] == snapshot["version"]
            for frame in good_commits:
                conn.sendall(frame)
            return "hold"

        with FakeWriter([poisoned, healthy]) as writer:
            replica = start_replica(writer.port)
            try:
                state = replica.state
                wait_until(
                    lambda: state.faults.get("bad_crc", 0) >= 1,
                    message="bad_crc fault",
                )
                wait_until(
                    lambda: state.version == ws.version,
                    message="post-fault catch-up",
                )
                # No silent divergence: the folded index matches the
                # scripted writer exactly.
                assert state.maintainer.kappa == ws.maintainer.kappa
                assert state.faults.get("divergence", 0) == 0
                assert "[bad_crc]" in state.last_fault
            finally:
                replica.stop()

    def test_truncated_stream_is_typed_not_partially_applied(self):
        ws, snapshot, records = scripted_writer_material()
        good_commits = [encode_frame(KIND_COMMIT, r.to_payload()) for r in records]

        def truncating(conn, hello):
            conn.sendall(encode_frame(KIND_SNAPSHOT, snapshot))
            conn.sendall(good_commits[0])
            # Half a frame, then a hard close mid-body.
            conn.sendall(good_commits[1][: HEADER_BYTES + 3])
            return None

        def healthy(conn, hello):
            assert hello["initialized"] is True
            # The replica folded commit 0 but must NOT have applied any
            # part of the truncated commit 1.
            assert hello["version"] == records[0].version
            for frame in good_commits[1:]:
                conn.sendall(frame)
            return "hold"

        with FakeWriter([truncating, healthy]) as writer:
            replica = start_replica(writer.port)
            try:
                state = replica.state
                wait_until(
                    lambda: state.faults.get("truncated", 0) >= 1,
                    message="truncated fault",
                )
                wait_until(
                    lambda: state.version == ws.version,
                    message="post-truncation catch-up",
                )
                assert state.maintainer.kappa == ws.maintainer.kappa
            finally:
                replica.stop()

    def test_bad_snapshot_is_rejected_then_resynced(self):
        ws, snapshot, records = scripted_writer_material()

        def bad_snapshot(conn, hello):
            conn.sendall(
                encode_frame(KIND_SNAPSHOT, {**snapshot, "schema": "bogus/1"})
            )
            return "hold"

        def healthy(conn, hello):
            # The bad snapshot must not have initialized the replica.
            assert hello["initialized"] is False
            conn.sendall(encode_frame(KIND_SNAPSHOT, ws.snapshot_document()))
            return "hold"

        with FakeWriter([bad_snapshot, healthy]) as writer:
            replica = start_replica(writer.port)
            try:
                state = replica.state
                wait_until(
                    lambda: state.faults.get("bad_snapshot", 0) >= 1,
                    message="bad_snapshot fault",
                )
                wait_until(
                    lambda: state.initialized and state.version == ws.version,
                    message="recovery snapshot",
                )
                assert state.maintainer.kappa == ws.maintainer.kappa
                assert state.snapshots_installed == 1
            finally:
                replica.stop()

    def test_divergent_commit_forces_snapshot_resync(self):
        ws, snapshot, records = scripted_writer_material()

        def skipping(conn, hello):
            conn.sendall(encode_frame(KIND_SNAPSHOT, snapshot))
            # Skip commit 0: the version chain breaks and the replica
            # must refuse to fold rather than silently diverge.
            conn.sendall(encode_frame(KIND_COMMIT, records[1].to_payload()))
            return "hold"

        def healthy(conn, hello):
            assert hello["initialized"] is False  # divergence dropped it
            conn.sendall(encode_frame(KIND_SNAPSHOT, ws.snapshot_document()))
            return "hold"

        with FakeWriter([skipping, healthy]) as writer:
            replica = start_replica(writer.port)
            try:
                state = replica.state
                wait_until(
                    lambda: state.faults.get("divergence", 0) >= 1,
                    message="divergence fault",
                )
                wait_until(
                    lambda: state.initialized and state.version == ws.version,
                    message="divergence resync",
                )
                assert state.maintainer.kappa == ws.maintainer.kappa
            finally:
                replica.stop()

    def test_writer_absent_replica_stays_uninitialized(self):
        # Point a replica at a port nobody listens on.
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        dead_port = probe.getsockname()[1]
        probe.close()
        replica = start_replica(dead_port)
        try:
            from repro.service.client import ServiceClient

            with ServiceClient("127.0.0.1", replica.port) as client:
                with pytest.raises(ServiceClientError) as excinfo:
                    client.kappa(0, 1)
            # An empty, never-initialized replica answers reads against
            # its (empty) graph: /kappa 404s on unknown vertices rather
            # than pretending to know the writer's graph.
            assert excinfo.value.status in (404, 503)
            assert replica.state.initialized is False
        finally:
            replica.stop()


# --------------------------------------------------------------------- #
# crash faults: real processes, SIGKILL
# --------------------------------------------------------------------- #


@pytest.fixture(scope="class")
def crash_cluster():
    from repro.replication import ReplicatedCluster

    with ReplicatedCluster("karate", replicas=2) as running:
        yield running


@pytest.mark.slow
class TestCrashFaults:
    """One process per component; faults are SIGKILL, not polite drains.

    The scenarios share one cluster (subprocess startup is the dominant
    cost) and run in definition order: replica crash/rejoin first, the
    unrecoverable writer crash last.
    """

    def test_killed_replica_rejoins_via_snapshot_and_converges(
        self, crash_cluster
    ):
        cluster = crash_cluster
        with cluster.writer_client() as writer:
            version = writer.edits(
                [("add", 100, 101), ("add", 101, 102), ("add", 100, 102)]
            ).version
        cluster.wait_converged(version)
        cluster.kill_replica(0)
        # Writes keep landing while the replica is down...
        with cluster.writer_client() as writer:
            version = writer.edits([("add", 102, 103), ("add", 103, 100)]).version
        # ...and the rejoined replica (a fresh empty process) must reach
        # them via snapshot + catch-up.
        cluster.restart_replica(0)
        cluster.wait_converged(version)
        with cluster.replica_client(0) as replica:
            _status, doc = replica.request("GET", "/healthz")
        assert int(doc["version"]) >= version
        replication = doc["replication"]
        assert replication["initialized"] is True
        assert replication["snapshots_installed"] >= 1
        # Fenced read at the writer's version answers correctly.
        with cluster.replica_client(0) as replica:
            answer = replica.kappa(100, 101, min_version=version)
        assert answer.kappa >= 1
        assert answer.version >= version

    def test_killed_writer_leaves_replicas_serving_stamped_reads(
        self, crash_cluster
    ):
        cluster = crash_cluster
        with cluster.writer_client() as writer:
            version = writer.edits([("add", 104, 100), ("add", 104, 101)]).version
        cluster.wait_converged(version)
        cluster.kill_writer()
        # Replicas answer reads from their warm indexes, stamped with the
        # version they are at — staleness is visible, not hidden.
        for index in range(2):
            with cluster.replica_client(index) as replica:
                _status, doc = replica.request("GET", "/healthz")
            assert int(doc["version"]) >= version
            assert int(doc["answered_at_version"]) >= version
        # Reads through the router still succeed (they round-robin over
        # the live replicas)...
        with cluster.router_client() as router:
            answer = router.kappa(0, 1)
        assert answer.version >= version
        # ...while writes fail with a *typed* upstream error, not a hang.
        with cluster.router_client() as router:
            with pytest.raises(ServiceClientError) as excinfo:
                router.edits([("add", 105, 106)])
        assert excinfo.value.status == 502
        assert excinfo.value.code == "upstream_unavailable"
