"""Unit tests for canonical edge/triangle keys."""

import pytest

from repro.graph.edge import (
    apex,
    canonical_edge,
    canonical_triangle,
    other_edges,
    triangle_edges,
)


class TestCanonicalEdge:
    def test_orders_integers(self):
        assert canonical_edge(2, 1) == (1, 2)
        assert canonical_edge(1, 2) == (1, 2)

    def test_orders_strings(self):
        assert canonical_edge("b", "a") == ("a", "b")

    def test_mixed_types_deterministic(self):
        forward = canonical_edge(1, "a")
        backward = canonical_edge("a", 1)
        assert forward == backward

    def test_usable_as_dict_key(self):
        d = {canonical_edge(5, 3): "x"}
        assert d[canonical_edge(3, 5)] == "x"

    def test_negative_numbers(self):
        assert canonical_edge(3, -7) == (-7, 3)

    def test_tuple_vertices(self):
        assert canonical_edge((2, 0), (1, 9)) == ((1, 9), (2, 0))


class TestCanonicalTriangle:
    def test_sorts_vertices(self):
        assert canonical_triangle(3, 1, 2) == (1, 2, 3)

    def test_all_rotations_identical(self):
        expected = canonical_triangle("x", "y", "z")
        assert canonical_triangle("z", "x", "y") == expected
        assert canonical_triangle("y", "z", "x") == expected

    def test_mixed_types_deterministic(self):
        a = canonical_triangle(1, "b", 2.5)
        b = canonical_triangle("b", 2.5, 1)
        assert a == b


class TestTriangleEdges:
    def test_three_canonical_edges(self):
        assert triangle_edges((1, 2, 3)) == ((1, 2), (1, 3), (2, 3))

    def test_other_edges_each_position(self):
        assert other_edges((1, 2, 3), (1, 2)) == ((1, 3), (2, 3))
        assert other_edges((1, 2, 3), (1, 3)) == ((1, 2), (2, 3))
        assert other_edges((1, 2, 3), (2, 3)) == ((1, 2), (1, 3))

    def test_other_edges_rejects_foreign_edge(self):
        with pytest.raises(ValueError):
            other_edges((1, 2, 3), (4, 5))


class TestApex:
    def test_returns_opposite_vertex(self):
        assert apex((1, 2, 3), (1, 3)) == 2
        assert apex((1, 2, 3), (1, 2)) == 3
        assert apex((1, 2, 3), (2, 3)) == 1

    def test_rejects_foreign_edge(self):
        with pytest.raises(ValueError):
            apex((1, 2, 3), (7, 8))
