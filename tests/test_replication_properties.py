"""Property-based replication invariants (hypothesis).

Two consistency properties the tier promises, checked over generated
edit/read interleavings against one live :class:`LocalCluster`:

* **per-replica version monotonicity** — the ``answered_at_version``
  stamped on successive answers from one replica never decreases, no
  matter how reads and writes interleave;
* **read-your-writes through the router** — a client that writes (the
  router forwards to the writer) and passes the returned ``version``
  back as ``min_version`` on its next read never observes older state,
  whichever backend the router picks.

The cluster is deliberately module-scoped: hypothesis shrinks inputs,
not infrastructure, and versions only ever grow — so examples compose
instead of interfering.
"""

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.graph import complete_graph
from repro.replication import LocalCluster

SETTINGS = settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)

# Edits touch a small vertex universe so adds/removes collide often.
vertex = st.integers(min_value=0, max_value=12)
edit_op = st.tuples(st.sampled_from(["add", "remove"]), vertex, vertex).map(
    lambda t: (t[0], t[1], t[2])
)
edit_batches = st.lists(
    st.lists(edit_op, min_size=1, max_size=5), min_size=1, max_size=4
)


@pytest.fixture(scope="module")
def cluster():
    with LocalCluster(complete_graph(4), replicas=2) as running:
        yield running


# Highest answered_at_version seen per replica, across ALL examples —
# monotonicity must hold for the replica's lifetime, not per example.
_watermarks = {}


@SETTINGS
@given(batches=edit_batches, reads_between=st.integers(0, 3))
def test_answered_at_version_is_monotonic_per_replica(
    cluster, batches, reads_between
):
    with cluster.writer_client() as writer:
        for batch in batches:
            writer.edits(batch)
            for index in range(2):
                with cluster.replica_client(index) as replica:
                    for _ in range(reads_between + 1):
                        _status, doc = replica.request("GET", "/healthz")
                        stamped = int(doc["answered_at_version"])
                        floor = _watermarks.get(index, 0)
                        assert stamped >= floor, (
                            f"replica {index} went backwards: "
                            f"{stamped} < {floor}"
                        )
                        _watermarks[index] = max(floor, stamped)


@SETTINGS
@given(batches=edit_batches)
def test_read_your_writes_through_router(cluster, batches):
    with cluster.router_client() as router:
        for batch in batches:
            outcome = router.edits(batch)
            # The write's version, passed back as a fence: whichever
            # backend answers must already include the write.
            _status, doc = router.request(
                "GET", f"/healthz?min_version={outcome.version}"
            )
            assert int(doc["answered_at_version"]) >= outcome.version
            assert int(doc["version"]) >= outcome.version
            # The client tracks the high-water mark for exactly this.
            assert router.last_version >= outcome.version


@SETTINGS
@given(batches=edit_batches)
def test_client_last_version_rides_every_response(cluster, batches):
    with cluster.writer_client() as writer:
        for batch in batches:
            outcome = writer.edits(batch)
            assert writer.last_version >= outcome.version
            seen = writer.last_version
            writer.healthz()
            assert writer.last_version >= seen
