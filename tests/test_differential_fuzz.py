"""Differential oracle fuzzing of dynamic kappa maintenance.

Three layers:

* a **tier-1 seed matrix** — every workload profile at two seeds, driven
  through the full oracle runner (Rule 0 invariants per op, oracle matrix
  at checkpoints), in both maintainer modes;
* a **mutation smoke-check** — an injected off-by-one kappa bug must be
  detected, shrunk to <= 10 ops, and survive a JSON round trip, proving a
  green fuzz run is meaningful;
* an **opt-in heavy matrix** (``REPRO_FUZZ_HEAVY=1`` or ``-m fuzz_heavy``)
  — more seeds x more ops for nightly/exhaustive runs.

The CLI equivalent of the tier-1 layer is ``repro fuzz``; both call
:func:`repro.testing.fuzz`.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.testing import (
    DEFAULT_ORACLES,
    EditOp,
    EditScript,
    ORACLE_NAMES,
    PROFILES,
    ReproBundle,
    apply_coalesced,
    apply_op,
    batch_boundary_bug_sut,
    coalesce,
    expected_outcome,
    fuzz,
    generate,
    perturbed_sut_factory,
    replay,
    run_script,
    shrink_script,
    stored_sut,
)

ALL_PROFILES = sorted(PROFILES)


# ------------------------------------------------------------------ #
# edit-script semantics
# ------------------------------------------------------------------ #


class TestEditScript:
    def test_json_round_trip_byte_identical(self):
        script = generate("uniform", 3, 60)
        text = script.dumps()
        again = EditScript.loads(text)
        assert again.dumps() == text
        assert again.ops == script.ops

    def test_total_semantics_classification(self):
        from repro.graph import Graph

        graph = Graph(edges=[(0, 1)])
        assert expected_outcome(graph, EditOp("add", 0, 0)) == "self_loop"
        assert expected_outcome(graph, EditOp("add", 1, 0)) == "duplicate"
        assert expected_outcome(graph, EditOp("remove", 0, 2)) == "missing_edge"
        assert expected_outcome(graph, EditOp("remove_vertex", 9)) == "missing_vertex"
        assert expected_outcome(graph, EditOp("add_vertex", 0)) == "noop"
        assert expected_outcome(graph, EditOp("add", 1, 2)) == "ok"

    def test_adversarial_ops_do_not_mutate_shadow(self):
        from repro.graph import Graph

        graph = Graph(edges=[(0, 1)])
        for op in (
            EditOp("add", 0, 0),
            EditOp("add", 1, 0),
            EditOp("remove", 0, 2),
            EditOp("remove_vertex", 9),
        ):
            outcome = apply_op(graph, op)
            assert outcome != "ok"
        assert graph.num_edges == 1

    def test_rejects_non_json_vertices(self):
        with pytest.raises(ValueError):
            EditOp("add", (0, 1), 2)

    def test_vertex_ops_arity_checked(self):
        with pytest.raises(ValueError):
            EditOp("add", 0)
        with pytest.raises(ValueError):
            EditOp("remove_vertex", 0, 1)


class TestWorkloads:
    @pytest.mark.parametrize("profile", ALL_PROFILES)
    def test_deterministic_and_sized(self, profile):
        first = generate(profile, 7, 80)
        second = generate(profile, 7, 80)
        assert first.dumps() == second.dumps()
        assert len(first) == 80
        assert generate(profile, 8, 80).dumps() != first.dumps()

    def test_adversarial_covers_every_rejection_class(self):
        from repro.graph import Graph

        script = generate("adversarial", 0, 400)
        graph = Graph()
        outcomes = {apply_op(graph, op) for op in script}
        assert {
            "ok",
            "self_loop",
            "duplicate",
            "missing_edge",
            "missing_vertex",
        } <= outcomes

    def test_grow_shrink_exercises_vertex_removal(self):
        script = generate("grow_shrink", 0, 600)
        kinds = {op.kind for op in script}
        assert "remove_vertex" in kinds

    def test_unknown_profile_rejected(self):
        with pytest.raises(ValueError):
            generate("nope", 0, 10)


class TestCoalesce:
    """coalesce(): net structural effect of a script, per-op classification."""

    def test_add_then_remove_same_edge_cancels(self):
        from repro.graph import Graph

        graph = Graph(edges=[(0, 1)])
        script = EditScript(
            ops=[EditOp("add", 1, 2), EditOp("remove", 2, 1)]
        )
        co = coalesce(graph, script)
        assert co.added == [] and co.removed == []
        # Both ops were fine per-op; the *net* effect is empty.
        assert co.outcomes == {"ok": 2}

    def test_remove_then_readd_cancels(self):
        from repro.graph import Graph

        graph = Graph(edges=[(0, 1), (1, 2), (0, 2)])
        co = coalesce(
            graph,
            EditScript(ops=[EditOp("remove", 0, 1), EditOp("add", 0, 1)]),
        )
        assert co.added == [] and co.removed == []
        assert co.outcomes == {"ok": 2}

    def test_remove_vertex_expands_to_incident_edges(self):
        from repro.graph import Graph

        graph = Graph(edges=[(0, 1), (0, 2), (1, 2)])
        co = coalesce(graph, EditScript(ops=[EditOp("remove_vertex", 0)]))
        assert sorted(co.removed) == [(0, 1), (0, 2)]
        assert co.removed_vertices == [0]
        assert co.outcomes == {"ok": 1}

    def test_outcome_counts_match_per_op_classification(self):
        from repro.graph import Graph

        for profile in ("adversarial", "grow_shrink"):
            script = generate(profile, seed=3, n_ops=200)
            co = coalesce(Graph(), script)
            shadow = Graph()
            expected: dict = {}
            for op in script:
                tag = apply_op(shadow, op)
                expected[tag] = expected.get(tag, 0) + 1
            assert co.outcomes == expected, profile

    def test_empty_script(self):
        from repro.graph import Graph

        co = coalesce(Graph(edges=[(0, 1)]), EditScript())
        assert not co.added and not co.removed and not co.outcomes
        assert co.applied == 0 and co.rejected == {}

    def test_apply_coalesced_matches_per_op_replay(self):
        from repro.core import DynamicTriangleKCore
        from repro.graph import Graph

        script = generate("grow_shrink", seed=9, n_ops=250)
        shadow = Graph()
        for op in script:
            apply_op(shadow, op)
        maintainer = DynamicTriangleKCore(Graph(), copy=False)
        co = coalesce(maintainer.graph, script)
        apply_coalesced(maintainer, co, strategy="batch")
        assert maintainer.graph == shadow
        from repro.core import triangle_kcore_decomposition

        assert maintainer.kappa == triangle_kcore_decomposition(shadow).kappa


# ------------------------------------------------------------------ #
# tier-1 seed matrix
# ------------------------------------------------------------------ #


class TestTier1Matrix:
    @pytest.mark.parametrize("profile", ALL_PROFILES)
    @pytest.mark.parametrize("seed", [0, 1])
    def test_no_divergence(self, profile, seed):
        report = run_script(
            generate(profile, seed, 150), checkpoint_every=50
        )
        assert report.ok, report.divergence
        assert report.checkpoints >= 3
        # The recompute and csr oracles always run; networkx when installed.
        assert "recompute" in report.oracles
        assert "csr" in report.oracles

    @pytest.mark.parametrize("profile", ["churn", "grow_shrink"])
    def test_no_divergence_with_triangle_store(self, profile):
        report = run_script(
            generate(profile, 0, 120),
            checkpoint_every=40,
            sut_factory=stored_sut,
        )
        assert report.ok, report.divergence

    def test_fuzz_aggregates_all_profiles(self):
        result = fuzz(seed=0, ops=60, checkpoint_every=30)
        assert result.ok
        assert [o.profile for o in result.outcomes] == ALL_PROFILES
        assert result.total_steps() == 60 * len(ALL_PROFILES)

    def test_empty_script_is_clean(self):
        report = run_script(EditScript())
        assert report.ok
        assert report.final_kappa == {}

    @pytest.mark.parametrize("profile", ALL_PROFILES)
    def test_no_divergence_batch_mode(self, profile):
        """The whole-batch write path under the same oracle matrix."""
        report = run_script(
            generate(profile, 0, 150),
            apply_mode="batch",
            batch_ops=25,
        )
        assert report.ok, report.divergence
        assert report.checkpoints >= 6  # one per chunk boundary

    def test_batch_mode_empty_script_is_clean(self):
        report = run_script(EditScript(), apply_mode="batch")
        assert report.ok
        assert report.final_kappa == {}

    def test_batch_mode_final_kappa_matches_per_op(self):
        script = generate("churn", 4, 200)
        per_op = run_script(script, checkpoint_every=50)
        batch = run_script(script, apply_mode="batch", batch_ops=40)
        assert per_op.ok and batch.ok
        assert per_op.final_kappa == batch.final_kappa


# ------------------------------------------------------------------ #
# mutation smoke-check: the harness can actually catch bugs
# ------------------------------------------------------------------ #


class TestMutationSmokeCheck:
    @pytest.mark.parametrize("level,profile", [(1, "triangle_bursts"), (2, "churn")])
    def test_injected_bug_is_detected_and_shrunk(self, level, profile):
        result = fuzz(
            seed=0,
            ops=300,
            profiles=[profile],
            checkpoint_every=50,
            sut_factory=perturbed_sut_factory(level),
            shrink=True,
        )
        assert not result.ok, (
            "the harness failed to notice a deliberately injected "
            f"off-by-one kappa bug at level {level}"
        )
        failure = result.first_failure
        assert failure.bundle is not None
        assert failure.shrink is not None
        # Acceptance bar: locally minimal repro within 10 ops.
        assert len(failure.bundle.script) <= 10
        # A kappa == level edge requires a (level + 2)-clique, so the true
        # minimum is C(level + 2, 2) insertions; the shrinker must find it.
        minimum = (level + 2) * (level + 1) // 2
        assert len(failure.bundle.script) == minimum
        assert failure.bundle.divergence is not None

    def test_bundle_round_trips_and_replays(self, tmp_path):
        result = fuzz(
            seed=0,
            ops=200,
            profiles=["triangle_bursts"],
            checkpoint_every=50,
            sut_factory=perturbed_sut_factory(1),
            shrink=True,
        )
        bundle = result.first_failure.bundle
        path = tmp_path / "bundle.json"
        bundle.save(path)
        loaded = ReproBundle.load(path)
        assert loaded.dumps() == bundle.dumps()
        assert json.loads(path.read_text())["format"] == "triangle-kcore-fuzz/1"
        # Replaying under the buggy maintainer still fails...
        assert not replay(loaded, sut_factory=perturbed_sut_factory(1)).ok
        # ...and the same bytes replay clean against the real maintainer.
        assert replay(loaded).ok

    def test_shrinker_refuses_passing_script(self):
        script = generate("uniform", 0, 30)
        with pytest.raises(ValueError):
            shrink_script(script, lambda s: False)

    def test_shrinker_on_synthetic_predicate(self):
        # Fails iff the script still adds both (0,1) and (2,3) somewhere:
        # the minimum is exactly those two ops.
        script = generate("uniform", 0, 120)
        script.ops.append(EditOp("add", 0, 1))
        script.ops.append(EditOp("add", 2, 3))

        def fails(candidate: EditScript) -> bool:
            pairs = {
                (min(op.u, op.v), max(op.u, op.v))
                for op in candidate
                if op.kind == "add"
            }
            return (0, 1) in pairs and (2, 3) in pairs

        result = shrink_script(script, fails)
        assert len(result.script) == 2
        assert result.original_ops == len(script)
        assert fails(result.script)


class TestBatchMutationSmokeCheck:
    """A green batch fuzz run is meaningful: an injected batch-boundary
    bug (one affected-region edge silently dropped before settling) must
    be detected, shrunk, and must replay clean on the real maintainer."""

    def test_batch_boundary_bug_is_detected_and_shrunk(self):
        result = fuzz(
            seed=0,
            ops=200,
            profiles=["triangle_bursts"],
            sut_factory=batch_boundary_bug_sut,
            apply_mode="batch",
            batch_ops=25,
            shrink=True,
        )
        assert not result.ok, (
            "the harness failed to notice the injected batch-boundary "
            "bug (dropped affected-region edge)"
        )
        failure = result.first_failure
        bundle = failure.bundle
        assert bundle is not None and failure.shrink is not None
        assert bundle.apply_mode == "batch"
        assert bundle.divergence is not None
        # Minimal trigger: a region edge NOT inserted in the same chunk
        # whose kappa must still move — a handful of ops, not hundreds.
        assert len(bundle.script) <= 10
        # The recorded (tightened) chunking replays the divergence...
        assert not replay(bundle, sut_factory=batch_boundary_bug_sut).ok
        # ...and the same bundle is clean on the real maintainer.
        assert replay(bundle).ok

    def test_per_op_mode_does_not_trip_the_batch_bug(self):
        """The seam only affects the batch path, pinning that per-op
        coverage alone would have missed this bug class."""
        report = run_script(
            generate("triangle_bursts", 0, 200),
            checkpoint_every=50,
            sut_factory=batch_boundary_bug_sut,
        )
        assert report.ok, report.divergence


class TestPerOpOracle:
    """The per_op differential oracle: a stateful per-op maintainer fed
    net diffs at every checkpoint, so batch-mode runs are checked against
    genuinely per-op application (not just recompute)."""

    def test_per_op_is_optin_not_default(self):
        assert "per_op" in ORACLE_NAMES
        assert "per_op" not in DEFAULT_ORACLES

    @pytest.mark.parametrize("mode", ["per_op", "batch"])
    def test_clean_run_with_per_op_oracle(self, mode):
        report = run_script(
            generate("churn", 0, 150),
            checkpoint_every=50,
            oracles=DEFAULT_ORACLES + ("per_op",),
            apply_mode=mode,
            batch_ops=25,
        )
        assert report.ok, report.divergence
        assert "per_op" in report.oracles

    def test_per_op_oracle_catches_batch_bug(self):
        report = run_script(
            generate("triangle_bursts", 0, 200),
            oracles=("per_op",),
            sut_factory=batch_boundary_bug_sut,
            apply_mode="batch",
            batch_ops=25,
        )
        assert not report.ok
        assert report.divergence.kind == "oracle"
        assert report.divergence.oracle == "per_op"


# ------------------------------------------------------------------ #
# the parallel oracle
# ------------------------------------------------------------------ #


class TestParallelOracle:
    """The sharded backend as an opt-in checkpoint oracle.

    In-process mode keeps the shard split/merge arithmetic under the
    fuzzer without paying a pool spawn per checkpoint; the CLI's
    ``fuzz --backend parallel`` runs the same oracle with real pools.
    """

    PARALLEL = ("parallel_workers", "parallel_inprocess")

    def test_parallel_is_optin_not_default(self):
        assert "parallel" in ORACLE_NAMES
        assert "parallel" not in DEFAULT_ORACLES

    def test_clean_run_with_parallel_oracle(self):
        report = run_script(
            generate("triangle_bursts", 0, 120),
            checkpoint_every=40,
            oracles=DEFAULT_ORACLES + ("parallel",),
            oracle_options={"parallel_workers": 3, "parallel_inprocess": True},
        )
        assert report.ok, report.divergence
        assert "parallel" in report.oracles

    def test_injected_shard_merge_bug_is_caught_and_shrunk(self):
        from repro.fast import inject_shard_merge_bug

        with inject_shard_merge_bug():
            result = fuzz(
                seed=0,
                ops=200,
                profiles=["triangle_bursts"],
                checkpoint_every=50,
                oracles=("parallel",),
                oracle_options={
                    "parallel_workers": 2,
                    "parallel_inprocess": True,
                },
                shrink=True,
            )
            assert not result.ok, (
                "the harness failed to notice the injected shard-merge "
                "off-by-one in the parallel backend"
            )
            failure = result.first_failure
            divergence = failure.bundle.divergence
            assert divergence.kind == "oracle"
            assert divergence.oracle == "parallel"
            # Losing one triangle needs one triangle to exist: the minimal
            # repro is exactly its three edge insertions.
            assert len(failure.bundle.script) == 3
        # Outside the context the same bundle replays clean.
        assert replay(
            failure.bundle, oracles=("parallel",)
        ).ok

    def test_divergence_names_the_culprit_oracle_only(self):
        from repro.fast import inject_shard_merge_bug

        with inject_shard_merge_bug():
            report = run_script(
                generate("triangle_bursts", 1, 80),
                checkpoint_every=20,
                oracles=DEFAULT_ORACLES + ("parallel",),
                oracle_options={
                    "parallel_workers": 2,
                    "parallel_inprocess": True,
                },
            )
        assert not report.ok
        # The healthy oracles agree with the SUT; only the buggy shard
        # merge disagrees, and the divergence must say so.
        assert report.divergence.oracle == "parallel"


# ------------------------------------------------------------------ #
# opt-in heavy matrix
# ------------------------------------------------------------------ #

heavy = pytest.mark.skipif(
    not os.environ.get("REPRO_FUZZ_HEAVY"),
    reason="heavy fuzz matrix is opt-in: set REPRO_FUZZ_HEAVY=1",
)


@heavy
@pytest.mark.fuzz_heavy
@pytest.mark.parametrize("seed", range(5))
def test_heavy_matrix(seed):
    result = fuzz(seed=seed, ops=1000, checkpoint_every=100)
    assert result.ok, result.first_failure.report.divergence


@heavy
@pytest.mark.fuzz_heavy
@pytest.mark.parametrize("seed", range(5))
def test_heavy_matrix_batch_mode(seed):
    result = fuzz(seed=seed, ops=1000, apply_mode="batch", batch_ops=50)
    assert result.ok, result.first_failure.report.divergence


@heavy
@pytest.mark.fuzz_heavy
@pytest.mark.parametrize("seed", range(3))
def test_heavy_matrix_stored_mode(seed):
    result = fuzz(
        seed=seed, ops=600, checkpoint_every=100, sut_factory=stored_sut
    )
    assert result.ok, result.first_failure.report.divergence
