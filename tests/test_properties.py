"""Property-based tests (hypothesis) for the core invariants.

Strategies generate small random graphs and random edit scripts; the
properties tested are the paper's own theorems:

* Definition 3/4 — the decomposition validator accepts every output.
* Theorem 1 — side edges of max-core triangles carry >= kappa.
* Claim 3 — kappa is always a valid lambda (DN-Graph sense).
* Algorithm 2 family — dynamic maintenance equals recomputation after any
  edit script.
* Clique equivalence — an n-clique decomposes to kappa = n - 2.
* Monotonicity — adding an edge never lowers any kappa; removing one never
  raises any.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.baselines import is_valid_lambda, tridn
from repro.core import (
    DynamicTriangleKCore,
    check_decomposition,
    triangle_kcore_decomposition,
)
from repro.graph import Graph, canonical_edge


@st.composite
def graphs(draw, max_vertices: int = 12) -> Graph:
    """Random simple graphs on 0..max_vertices-1."""
    n = draw(st.integers(min_value=2, max_value=max_vertices))
    possible = [(u, v) for u in range(n) for v in range(u + 1, n)]
    edges = draw(
        st.lists(st.sampled_from(possible), unique=True, max_size=len(possible))
    )
    return Graph(edges=edges, vertices=range(n))


@st.composite
def edit_scripts(draw, max_vertices: int = 10, max_steps: int = 14):
    """(initial graph, list of (u, v) toggles)."""
    graph = draw(graphs(max_vertices=max_vertices))
    n = max(graph.num_vertices, 2)
    steps = draw(
        st.lists(
            st.tuples(
                st.integers(0, n - 1), st.integers(0, n - 1)
            ).filter(lambda p: p[0] != p[1]),
            max_size=max_steps,
        )
    )
    return graph, steps


@settings(max_examples=60, deadline=None)
@given(graphs())
def test_decomposition_is_always_valid(graph):
    result = triangle_kcore_decomposition(graph)
    check_decomposition(graph, result.kappa)


@settings(max_examples=60, deadline=None)
@given(graphs())
def test_kappa_bounded_by_support(graph):
    result = triangle_kcore_decomposition(graph)
    for (u, v), kappa in result.kappa.items():
        assert 0 <= kappa <= graph.edge_support(u, v)


@settings(max_examples=40, deadline=None)
@given(graphs(max_vertices=10))
def test_kappa_is_valid_lambda(graph):
    result = triangle_kcore_decomposition(graph)
    assert is_valid_lambda(graph, result.kappa)


@settings(max_examples=25, deadline=None)
@given(graphs(max_vertices=9))
def test_tridn_converges_to_kappa(graph):
    result = triangle_kcore_decomposition(graph)
    assert tridn(graph).lambda_ == result.kappa


@settings(max_examples=40, deadline=None)
@given(edit_scripts())
def test_dynamic_equals_static_after_any_edit_script(script):
    graph, steps = script
    maintainer = DynamicTriangleKCore(graph)
    for u, v in steps:
        if maintainer.graph.has_edge(u, v):
            maintainer.remove_edge(u, v)
        else:
            maintainer.add_edge(u, v)
    expected = triangle_kcore_decomposition(maintainer.graph).kappa
    assert maintainer.kappa == expected


@settings(max_examples=40, deadline=None)
@given(graphs(max_vertices=10), st.integers(0, 9), st.integers(0, 9))
def test_insertion_is_monotone_nondecreasing(graph, u, v):
    if u == v or graph.has_edge(u, v):
        return
    before = triangle_kcore_decomposition(graph).kappa
    graph.add_vertex(u)
    graph.add_vertex(v)
    graph.add_edge(u, v)
    after = triangle_kcore_decomposition(graph).kappa
    for edge, old_value in before.items():
        assert after[edge] >= old_value


@settings(max_examples=40, deadline=None)
@given(graphs(max_vertices=10), st.data())
def test_deletion_is_monotone_nonincreasing(graph, data):
    edges = sorted(graph.edges(), key=repr)
    if not edges:
        return
    u, v = data.draw(st.sampled_from(edges))
    before = triangle_kcore_decomposition(graph).kappa
    graph.remove_edge(u, v)
    after = triangle_kcore_decomposition(graph).kappa
    for edge, new_value in after.items():
        assert new_value <= before[edge]


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=3, max_value=8))
def test_clique_kappa_equivalence(n):
    from repro.graph import complete_graph

    result = triangle_kcore_decomposition(complete_graph(n))
    assert set(result.kappa.values()) == {n - 2}


@settings(max_examples=40, deadline=None)
@given(graphs(max_vertices=10))
def test_processing_order_is_nondecreasing_in_kappa(graph):
    result = triangle_kcore_decomposition(graph)
    values = [result.kappa[edge] for edge in result.processing_order]
    assert values == sorted(values)


@settings(max_examples=30, deadline=None)
@given(graphs(max_vertices=10))
def test_membership_counts_equal_kappa(graph):
    result = triangle_kcore_decomposition(graph, store_membership=True)
    for edge, kappa in result.kappa.items():
        assert result.membership.count(edge) == kappa


@settings(max_examples=30, deadline=None)
@given(graphs(max_vertices=10))
def test_level_subgraphs_nest(graph):
    from repro.core import level_subgraph

    result = triangle_kcore_decomposition(graph)
    previous = None
    for k in range(result.max_kappa, 0, -1):
        current = set(level_subgraph(graph, result, k).edges())
        if previous is not None:
            assert previous <= current
        previous = current


@settings(max_examples=30, deadline=None)
@given(graphs(max_vertices=10))
def test_density_plot_covers_vertices_once(graph):
    from repro.viz import density_plot

    result = triangle_kcore_decomposition(graph)
    plot = density_plot(graph, result)
    assert sorted(map(repr, plot.order)) == sorted(
        repr(v) for v in graph.vertices()
    )


@settings(max_examples=30, deadline=None)
@given(graphs(max_vertices=10))
def test_vertex_kappa_consistent_with_plot_heights(graph):
    from repro.viz import density_plot

    result = triangle_kcore_decomposition(graph)
    plot = density_plot(graph, result, y_mode="vertex_max")
    vk = result.vertex_kappa()
    for vertex, height in zip(plot.order, plot.heights):
        expected = vk.get(vertex, -2) + 2 if vertex in vk else 0
        assert height == expected


@settings(max_examples=50, deadline=None)
@given(
    st.lists(
        st.tuples(st.integers(0, 8), st.integers(0, 8)).filter(
            lambda p: p[0] != p[1]
        ),
        min_size=1,
        max_size=20,
    )
)
def test_canonical_edges_form_consistent_keys(pairs):
    graph = Graph()
    seen = set()
    for u, v in pairs:
        graph.add_edge(u, v, exist_ok=True)
        seen.add(canonical_edge(u, v))
    assert set(graph.edges()) == seen


@settings(max_examples=30, deadline=None)
@given(graphs(max_vertices=10), st.data())
def test_local_bounds_bracket_kappa(graph, data):
    from repro.core import kappa_bounds

    edges = sorted(graph.edges(), key=repr)
    if not edges:
        return
    u, v = data.draw(st.sampled_from(edges))
    result = triangle_kcore_decomposition(graph)
    radius = data.draw(st.integers(1, 3))
    lower, upper = kappa_bounds(graph, u, v, radius=radius, sweeps=radius)
    assert lower <= result.kappa_of(u, v) <= upper


@settings(max_examples=30, deadline=None)
@given(graphs(max_vertices=10))
def test_community_index_matches_bfs_components(graph):
    from repro.core import CommunityIndex, triangle_connected_components

    result = triangle_kcore_decomposition(graph)
    index = CommunityIndex(graph, result)
    for k in range(1, result.max_kappa + 1):
        from_bfs = {
            frozenset(c) for c in triangle_connected_components(graph, result, k)
        }
        from_index = {frozenset(c) for c in index.communities_at(k)}
        assert from_bfs == from_index


@settings(max_examples=30, deadline=None)
@given(graphs(max_vertices=10))
def test_persistence_roundtrip(graph):
    import os
    import tempfile

    from repro.core import load_result, save_result

    result = triangle_kcore_decomposition(graph)
    handle, path = tempfile.mkstemp(suffix=".json")
    os.close(handle)
    try:
        save_result(result, path)
        back = load_result(path)
        assert back.kappa == result.kappa
        assert back.processing_order == result.processing_order
    finally:
        os.unlink(path)


@settings(max_examples=25, deadline=None)
@given(edit_scripts(max_vertices=8, max_steps=10))
def test_triangle_store_stays_consistent(script):
    from repro.graph import TriangleStore

    graph, steps = script
    store = TriangleStore(graph.copy())
    for u, v in steps:
        if store.graph.has_edge(u, v):
            store.remove_edge(u, v)
        else:
            store.add_edge(u, v)
    assert store.is_consistent()


@settings(max_examples=25, deadline=None)
@given(graphs(max_vertices=9))
def test_subgraph_kappa_never_exceeds_global(graph):
    """Monotonicity under subgraphs: removing structure cannot raise kappa."""
    result = triangle_kcore_decomposition(graph)
    vertices = sorted(graph.vertices(), key=repr)
    half = graph.subgraph(vertices[: max(2, len(vertices) // 2 + 1)])
    sub_result = triangle_kcore_decomposition(half)
    for edge, value in sub_result.kappa.items():
        assert value <= result.kappa[edge]


@settings(max_examples=25, deadline=None)
@given(graphs(max_vertices=9))
def test_csv_estimate_bounded_by_kappa_plus_two(graph):
    from repro.baselines import csv_co_clique_sizes

    result = triangle_kcore_decomposition(graph)
    for edge, size in csv_co_clique_sizes(graph).items():
        assert size <= result.kappa[edge] + 2
