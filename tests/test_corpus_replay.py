"""Replay every committed regression bundle against the full oracle matrix.

``tests/corpus/`` holds shrunk :class:`~repro.testing.ReproBundle` files —
each one a maintenance scenario that either caught a (deliberately
injected) bug during development or pins a subtle algorithmic branch.  The
contract: every future maintenance bug becomes one more JSON file here, and
this module keeps it failing-proof forever.

Each bundle is checked four ways: byte-identical JSON round trip, clean
replay against all oracles with the default maintainer, clean replay with
the triangle-store maintainer, and a final-kappa match against the
``expected_kappa`` recorded when the bundle was minted (byte-for-byte
replay, not merely crash-free).
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.testing import ReproBundle, replay, stored_sut

CORPUS_DIR = Path(__file__).parent / "corpus"
BUNDLE_PATHS = sorted(CORPUS_DIR.glob("*.json"))


def test_corpus_is_populated():
    assert len(BUNDLE_PATHS) >= 5, (
        f"regression corpus shrank to {len(BUNDLE_PATHS)} bundles; "
        "bundles must never be deleted, only added"
    )


@pytest.mark.parametrize(
    "path", BUNDLE_PATHS, ids=[p.stem for p in BUNDLE_PATHS]
)
class TestCorpusBundle:
    def test_round_trips_byte_identical(self, path):
        bundle = ReproBundle.load(path)
        assert ReproBundle.loads(bundle.dumps()).dumps() == bundle.dumps()
        obj = json.loads(path.read_text())
        assert obj["format"] == "triangle-kcore-fuzz/1"
        assert obj["description"], "corpus bundles must say what they pin"
        assert obj.get("expected_kappa") is not None, (
            "corpus bundles must record the expected final kappa"
        )

    def test_replays_clean_default_maintainer(self, path):
        bundle = ReproBundle.load(path)
        report = replay(bundle)
        assert report.ok, (
            f"regression bundle {path.name} diverged: "
            f"{report.divergence.kind}: {report.divergence.message} "
            f"{report.divergence.diff[:5]}"
        )
        assert report.steps == len(bundle.script)

    def test_replays_clean_stored_maintainer(self, path):
        bundle = ReproBundle.load(path)
        report = replay(bundle, sut_factory=stored_sut)
        assert report.ok, (
            f"regression bundle {path.name} diverged in triangle-store "
            f"mode: {report.divergence.kind}: {report.divergence.message}"
        )

    def test_tight_checkpoints_also_clean(self, path):
        # A cadence of 1 turns every op into a full oracle comparison; the
        # corpus is small enough to afford maximum scrutiny.
        bundle = ReproBundle.load(path)
        report = replay(bundle, checkpoint_every=1)
        assert report.ok, report.divergence
