"""Tests for the comparison-grid and timeline SVG renderers."""

import pytest

from repro.analysis import track_communities
from repro.core import triangle_kcore_decomposition
from repro.graph import Graph, SnapshotStream, complete_graph
from repro.viz import density_plot, side_by_side_svg, timeline_svg


@pytest.fixture
def small_plot(k5):
    result = triangle_kcore_decomposition(k5)
    return density_plot(k5, result, title="K5")


class TestSideBySide:
    def test_grid_layout(self, small_plot):
        svg = side_by_side_svg([small_plot] * 4, columns=2)
        assert svg.startswith("<svg")
        assert svg.count("<g transform") == 4
        # 2x2 grid of 450x220 panels
        assert 'width="900"' in svg
        assert 'height="440"' in svg

    def test_single_column(self, small_plot):
        svg = side_by_side_svg([small_plot, small_plot], columns=1)
        assert 'width="450"' in svg
        assert 'height="440"' in svg

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            side_by_side_svg([])

    def test_column_floor(self, small_plot):
        svg = side_by_side_svg([small_plot], columns=0)
        assert svg.startswith("<svg")


class TestTimelineSvg:
    @pytest.fixture
    def timeline(self):
        def clique(members):
            return [
                (u, v) for i, u in enumerate(members) for v in members[i + 1 :]
            ]

        g0 = Graph(edges=clique(range(6)) + clique(range(10, 16)))
        g1 = Graph(edges=clique(list(range(6)) + list(range(10, 16))))
        return track_communities(SnapshotStream([g0, g1]))

    def test_renders_merge(self, timeline):
        svg = timeline_svg(timeline, labels=["before", "after"])
        assert svg.startswith("<svg")
        assert "before" in svg and "after" in svg
        assert "<circle" in svg
        assert "#c62828" in svg  # merge color used

    def test_labels_optional(self, timeline):
        svg = timeline_svg(timeline)
        assert "t0" in svg and "t1" in svg

    def test_empty_timeline_rejected(self):
        from repro.analysis.timeline import CommunityTimeline

        with pytest.raises(ValueError):
            timeline_svg(CommunityTimeline())

    def test_dissolve_marker(self):
        def clique(members):
            return [
                (u, v) for i, u in enumerate(members) for v in members[i + 1 :]
            ]

        g0 = Graph(edges=clique(range(6)))
        g1 = Graph(edges=clique(range(100, 106)))
        timeline = track_communities(SnapshotStream([g0, g1]))
        svg = timeline_svg(timeline)
        assert "&#215;" in svg  # the dissolve cross
