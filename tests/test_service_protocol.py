"""Unit tests for the service wire protocol, routing, and metrics plumbing."""

import asyncio
import json
import socket

import pytest

from repro.service import ProtocolError, ServiceError, TokenBucket
from repro.service.handlers import route
from repro.service.protocol import (
    SERVICE_SCHEMA,
    HttpRequest,
    error_payload,
    read_http_request,
    render_http_response,
)
from repro.service.state import LatencyReservoir, ServiceMetrics


def parse(raw: bytes):
    """Run the asyncio request parser over a canned byte string."""

    async def go():
        reader = asyncio.StreamReader()
        reader.feed_data(raw)
        reader.feed_eof()
        return await read_http_request(reader)

    return asyncio.run(go())


class TestRequestParser:
    def test_simple_get(self):
        request = parse(b"GET /kappa?u=1&v=2 HTTP/1.1\r\nHost: x\r\n\r\n")
        assert request.method == "GET"
        assert request.path == "/kappa"
        assert request.param("u") == "1"
        assert request.param("v") == "2"
        assert request.param("absent") is None

    def test_clean_eof_returns_none(self):
        assert parse(b"") is None

    def test_post_with_body(self):
        body = b'{"ops": []}'
        raw = (
            b"POST /edits HTTP/1.1\r\n"
            + f"Content-Length: {len(body)}\r\n\r\n".encode()
            + body
        )
        request = parse(raw)
        assert request.method == "POST"
        assert request.json_body() == {"ops": []}

    def test_percent_decoding(self):
        request = parse(b"GET /kappa?u=Author%201&v=B HTTP/1.1\r\n\r\n")
        assert request.param("u") == "Author 1"

    @pytest.mark.parametrize(
        "raw",
        [
            b"NONSENSE\r\n\r\n",  # not 3 request-line parts
            b"GET /x SPDY/3\r\n\r\n",  # unsupported protocol
            b"GET /x HTTP/1.1\r\nno-colon-header\r\n\r\n",
            b"GET /x HTTP/1.1\r\nContent-Length: potato\r\n\r\n",
            b"GET /x HTTP/1.1\r\nContent-Length: -5\r\n\r\n",
            b"POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
        ],
    )
    def test_malformed_framing_rejected(self, raw):
        with pytest.raises(ProtocolError) as excinfo:
            parse(raw)
        assert excinfo.value.status in (400, 413, 431)

    def test_truncated_body_rejected(self):
        with pytest.raises(ProtocolError):
            parse(b"POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc")

    def test_oversized_body_rejected(self):
        raw = b"POST /x HTTP/1.1\r\nContent-Length: 999999999\r\n\r\n"
        with pytest.raises(ProtocolError) as excinfo:
            parse(raw)
        assert excinfo.value.status == 413

    def test_bad_json_body_is_service_error(self):
        request = parse(
            b"POST /edits HTTP/1.1\r\nContent-Length: 3\r\n\r\n{{{"
        )
        with pytest.raises(ServiceError) as excinfo:
            request.json_body()
        assert excinfo.value.status == 400

    def test_connection_close_flag(self):
        request = parse(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n")
        assert request.wants_close


class TestResponseRenderer:
    def test_roundtrip(self):
        raw = render_http_response(200, {"a": 1, "version": 7})
        head, _, body = raw.partition(b"\r\n\r\n")
        assert head.startswith(b"HTTP/1.1 200 OK")
        assert f"Content-Length: {len(body)}".encode() in head
        assert json.loads(body) == {"a": 1, "version": 7}

    def test_retry_after_header(self):
        raw = render_http_response(
            429, error_payload("rate_limited", "slow down"), retry_after=2.4
        )
        # Rounded up: the integer hint must never under-promise the wait.
        assert b"Retry-After: 3" in raw
        raw = render_http_response(
            503, error_payload("overloaded", "full"), retry_after=0.4
        )
        assert b"Retry-After: 1" in raw

    def test_close_header(self):
        raw = render_http_response(503, {}, keep_alive=False)
        assert b"Connection: close" in raw

    def test_error_payload_shape(self):
        payload = error_payload("not_found", "nope", version=3)
        assert payload["schema"] == SERVICE_SCHEMA
        assert payload["error"] == {"code": "not_found", "message": "nope"}
        assert payload["version"] == 3


def _request(method="GET", path="/kappa", query=None, body=b""):
    return HttpRequest(
        method=method,
        path=path,
        query=query or {},
        headers={},
        body=body,
        target=path,
    )


class TestRouting:
    @pytest.mark.parametrize(
        "method,path,endpoint",
        [
            ("GET", "/healthz", "healthz"),
            ("GET", "/kappa", "kappa"),
            ("GET", "/community", "community"),
            ("GET", "/hierarchy", "hierarchy"),
            ("GET", "/stats", "stats"),
            ("GET", "/templates/new_form", "templates"),
            ("POST", "/edits", "edits"),
        ],
    )
    def test_known_routes(self, method, path, endpoint):
        name, handler = route(_request(method=method, path=path))
        assert name == endpoint
        assert callable(handler)

    def test_unknown_path_404(self):
        with pytest.raises(ServiceError) as excinfo:
            route(_request(path="/nope"))
        assert excinfo.value.status == 404

    def test_wrong_method_405(self):
        with pytest.raises(ServiceError) as excinfo:
            route(_request(method="POST", path="/kappa"))
        assert excinfo.value.status == 405
        with pytest.raises(ServiceError) as excinfo:
            route(_request(method="GET", path="/edits"))
        assert excinfo.value.status == 405

    def test_nested_template_path_404(self):
        request = _request(path="/templates/a/b")
        _name, handler = route(request)
        # route() accepts the prefix; the handler rejects the nested name.
        with pytest.raises(ServiceError) as excinfo:
            handler(None, request, None)
        assert excinfo.value.status == 404


class TestTokenBucket:
    def test_burst_then_refill(self):
        bucket = TokenBucket(rate=2.0, burst=3.0, now=0.0)
        assert [bucket.allow(0.0) for _ in range(4)] == [
            True,
            True,
            True,
            False,
        ]
        # 1 second at 2 tokens/s refills 2 tokens.
        assert bucket.allow(1.0)
        assert bucket.allow(1.0)
        assert not bucket.allow(1.0)

    def test_retry_after_estimate(self):
        bucket = TokenBucket(rate=2.0, burst=1.0, now=0.0)
        assert bucket.allow(0.0)
        assert bucket.retry_after() == pytest.approx(0.5)

    def test_clock_never_goes_backwards(self):
        bucket = TokenBucket(rate=1.0, burst=1.0, now=10.0)
        assert bucket.allow(10.0)
        assert not bucket.allow(5.0)  # stale clock: no refill, no crash


class TestLatencyReservoir:
    def test_percentiles_exact_on_small_sets(self):
        reservoir = LatencyReservoir(capacity=100)
        for ms in range(1, 101):
            reservoir.record(ms / 1000.0)
        assert reservoir.summary()["count"] == 100
        assert reservoir.percentile_ms(0.50) == pytest.approx(51.0)
        assert reservoir.percentile_ms(0.99) == pytest.approx(100.0)

    def test_bounded_memory(self):
        reservoir = LatencyReservoir(capacity=10)
        for _ in range(1000):
            reservoir.record(0.001)
        assert len(reservoir._samples) == 10
        assert reservoir.summary()["count"] == 1000

    def test_empty_summary(self):
        summary = LatencyReservoir().summary()
        assert summary == {
            "count": 0,
            "mean_ms": 0.0,
            "p50_ms": 0.0,
            "p95_ms": 0.0,
            "p99_ms": 0.0,
        }


class TestServiceMetrics:
    def test_stats_section_shape(self):
        metrics = ServiceMetrics()
        metrics.note_queued()
        metrics.note_dequeued()
        metrics.note_request("kappa", 0.004, error=False)
        metrics.note_request("kappa", 0.006, error=True)
        metrics.note_rejected("overloaded")
        section = metrics.as_dict()
        assert section["schema"] == SERVICE_SCHEMA
        assert section["total_requests"] == 2
        assert section["requests"]["kappa"]["count"] == 2
        assert section["requests"]["kappa"]["errors"] == 1
        assert section["requests"]["kappa"]["p99_ms"] >= 4.0
        assert section["rejected"]["overloaded"] == 1
        assert section["queue"]["peak"] == 1
        assert section["queue"]["depth"] == 0

    def test_unknown_endpoint_folds_into_other(self):
        metrics = ServiceMetrics()
        metrics.note_request("does-not-exist", 0.001, error=False)
        assert metrics.as_dict()["requests"]["other"]["count"] == 1


class TestRawSocket:
    """Strict-parser behaviour through a real listening server."""

    @pytest.fixture(scope="class")
    def server(self):
        from repro.graph import complete_graph
        from repro.service import BackgroundServer

        with BackgroundServer(complete_graph(5)) as background:
            yield background

    def _exchange(self, server, raw: bytes) -> bytes:
        with socket.create_connection(
            ("127.0.0.1", server.port), timeout=10
        ) as sock:
            sock.sendall(raw)
            sock.shutdown(socket.SHUT_WR)
            chunks = []
            while True:
                chunk = sock.recv(65536)
                if not chunk:
                    break
                chunks.append(chunk)
        return b"".join(chunks)

    def test_garbage_request_line(self, server):
        response = self._exchange(server, b"\x00\x01\x02 garbage\r\n\r\n")
        assert response.startswith(b"HTTP/1.1 400")

    def test_http10_is_accepted(self, server):
        response = self._exchange(server, b"GET /healthz HTTP/1.0\r\n\r\n")
        assert response.startswith(b"HTTP/1.1 200")

    def test_unsupported_method_on_known_path(self, server):
        response = self._exchange(
            server, b"DELETE /kappa HTTP/1.1\r\n\r\n"
        )
        assert response.startswith(b"HTTP/1.1 405")

    def test_keep_alive_two_requests_one_connection(self, server):
        raw = (
            b"GET /healthz HTTP/1.1\r\n\r\n"
            b"GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n"
        )
        response = self._exchange(server, raw)
        assert response.count(b"HTTP/1.1 200") == 2

    def test_huge_declared_body_rejected(self, server):
        response = self._exchange(
            server,
            b"POST /edits HTTP/1.1\r\nContent-Length: 99999999999\r\n\r\n",
        )
        assert response.startswith(b"HTTP/1.1 413")
