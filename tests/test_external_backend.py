"""The out-of-core ``external`` backend: bit-identity, faults, RSS caps.

Four concerns, mirroring the PR 8 shard-tiling suite and the PR 5
persistence-error matrix:

* **Bit-identity** — ``external`` must produce the exact ``csr`` kappa map
  *and* the exact ``csr-vec`` canonical processing order on every graph,
  for any partition count (including the single-partition degenerate
  case), through both the in-RAM :meth:`ExternalCSR.build` entry and the
  bounded-memory :func:`spill_edges` stream builder, with and without
  numpy, plus a hypothesis property over adversarial degree
  distributions.
* **Reconciliation fixed point** — unit-level checks that boundary
  demotions iterate across partition seams until no new frontier edges
  appear, and that the ``floor``-mode h-index admission prunes partitions
  without disturbing any kappa at or above the floor.
* **Fault matrix** — truncated column file, corrupted bytes (checksum
  mismatch), manifest format-version mismatch, missing manifest, and a
  spill directory deleted mid-run each raise the typed
  :class:`~repro.exceptions.SpillError` (a :class:`BackendError`) naming
  the offending path; a SIGKILL'd run leaves no stale scratch files past
  the next open.
* **RSS budget** — a subprocess decomposes a stream whose in-RAM CSR
  build demonstrably exceeds the cap while the external path stays
  under it (numpy hosts with the stdlib ``resource`` module only; skipped
  with a recorded reason elsewhere).
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import zlib

import pytest
from hypothesis import given, settings, strategies as st

from tests.conftest import maxrss_bytes
from repro.exceptions import BackendError, SpillError
from repro.fast import csr_decomposition
from repro.fast import csr as csr_mod
from repro.fast.external import (
    DEFAULT_PARTITIONS,
    MANIFEST_NAME,
    SPILL_FORMAT,
    ExternalCSR,
    cleanup_stale,
    decompose_spill,
    external_decomposition,
    inject_boundary_drop_bug,
    kappa_upper_bounds,
    spill_edges,
)
from repro.fast.csr import CSRGraph
from repro.graph import Graph, complete_graph, erdos_renyi

PARTITION_COUNTS = (1, 2, 3, 7)


def graph_zoo() -> dict:
    two_k4 = complete_graph(4)
    for u in (10, 11, 12):
        two_k4.add_edge(3, u)
    for i, u in enumerate((10, 11, 12)):
        for v in (10, 11, 12)[i + 1:]:
            two_k4.add_edge(u, v)
    return {
        "fig2": Graph(
            edges=[
                ("A", "B"), ("A", "C"), ("B", "C"), ("B", "D"),
                ("B", "E"), ("C", "D"), ("C", "E"), ("D", "E"),
            ]
        ),
        "fig3": Graph(
            edges=[
                ("A", "B"), ("B", "C"), ("A", "E"), ("A", "F"),
                ("E", "F"), ("C", "D"), ("C", "E"), ("D", "E"),
            ]
        ),
        "k5": complete_graph(5),
        "two_k4": two_k4,
        "empty": Graph(),
        "single_edge": Graph(edges=[(0, 1)]),
        "star": Graph(edges=[(0, i) for i in range(1, 12)]),
        "er_medium": erdos_renyi(60, 0.12, seed=1),
    }


GRAPH_NAMES = tuple(graph_zoo())


def int_graph(num_vertices: int, edges) -> Graph:
    """Graph with vertices inserted 0..n-1 (id order == insertion order).

    :func:`spill_edges` relabels by stable ``(degree, id)``;
    :meth:`CSRGraph.from_graph` by stable ``(degree, insertion order)``.
    Inserting every vertex in id order first makes the two conventions
    coincide, so stream-built spills can be compared bit-for-bit against
    the in-RAM build.
    """
    g = Graph()
    for v in range(num_vertices):
        g.add_vertex(v)
    for u, v in edges:
        g.add_edge(u, v)
    return g


# ------------------------------------------------------------------ #
# bit-identity vs csr / csr-vec
# ------------------------------------------------------------------ #


class TestBitIdentity:
    @pytest.mark.parametrize("name", GRAPH_NAMES)
    def test_kappa_and_canonical_order(self, name):
        graph = graph_zoo()[name]
        want_kappa = csr_decomposition(graph).kappa
        want_order = csr_decomposition(
            graph, executor="vector"
        ).processing_order
        for parts in PARTITION_COUNTS:
            got = external_decomposition(graph, partitions=parts)
            assert got.kappa == want_kappa, (name, parts)
            assert got.processing_order == want_order, (name, parts)

    def test_single_partition_degenerate(self):
        # One partition = no seams: the reconciliation loop must still
        # reproduce the canonical answers (and its partition table must
        # tile the whole vertex range).
        graph = graph_zoo()["er_medium"]
        want = csr_decomposition(graph, executor="vector")
        got = external_decomposition(graph, partitions=1)
        assert got.kappa == want.kappa
        assert got.processing_order == want.processing_order

    @pytest.mark.parametrize("name", GRAPH_NAMES)
    def test_pure_python_path(self, name, monkeypatch):
        graph = graph_zoo()[name]
        want_kappa = csr_decomposition(graph).kappa
        want_order = csr_decomposition(
            graph, executor="vector"
        ).processing_order
        monkeypatch.setattr(csr_mod, "np", None)
        got = external_decomposition(graph, partitions=3)
        assert got.kappa == want_kappa
        assert got.processing_order == want_order

    def test_spill_edges_stream_matches_in_ram_build(self, tmp_path):
        edges = sorted(erdos_renyi(40, 0.15, seed=7).edges())
        graph = int_graph(40, edges)
        want = csr_decomposition(graph, executor="vector")
        # Stream with duplicates and self-loops thrown in: the builder
        # must dedup and drop them.
        noisy = list(edges) + [(3, 3), (0, 0)] + edges[:5] \
            + [(v, u) for u, v in edges[5:9]]
        ext = spill_edges(iter(noisy), 40, str(tmp_path / "s"), partitions=3)
        try:
            got = decompose_spill(ext)
        finally:
            ext.close()
        assert got.kappa == want.kappa
        assert got.processing_order == want.processing_order

    def test_spill_edges_pure_python(self, tmp_path, monkeypatch):
        edges = sorted(erdos_renyi(18, 0.3, seed=3).edges())
        graph = int_graph(18, edges)
        want = csr_decomposition(graph, executor="vector")
        monkeypatch.setattr(csr_mod, "np", None)
        ext = spill_edges(iter(edges), 18, str(tmp_path / "s"), partitions=3)
        try:
            got = decompose_spill(ext)
        finally:
            ext.close()
        assert got.kappa == want.kappa
        assert got.processing_order == want.processing_order

    def test_reopened_spill_is_equivalent(self, tmp_path):
        # build -> close -> open(verify=True) -> decompose: the on-disk
        # round trip (including checksum verification) changes nothing.
        graph = graph_zoo()["two_k4"]
        want = csr_decomposition(graph, executor="vector")
        spill = str(tmp_path / "spill")
        ExternalCSR.build(graph, spill, partitions=3).close()
        ext = ExternalCSR.open(spill, verify=True)
        try:
            got = decompose_spill(ext)
        finally:
            ext.close()
        assert got.kappa == want.kappa
        assert got.processing_order == want.processing_order

    @settings(max_examples=40, deadline=None)
    @given(st.data())
    def test_property_adversarial_degrees(self, data):
        # Heavy-tailed degree mixes: a few hubs joined to everything plus
        # a sparse periphery — the worst case for arc-balanced partition
        # cuts (hubs make ranges indivisible, periphery makes them empty).
        n = data.draw(st.integers(min_value=2, max_value=24), label="n")
        hubs = data.draw(
            st.lists(
                st.integers(min_value=0, max_value=n - 1),
                max_size=3, unique=True,
            ),
            label="hubs",
        )
        edge_set = set()
        for h in hubs:
            for v in range(n):
                if v != h:
                    edge_set.add((min(h, v), max(h, v)))
        extra = data.draw(
            st.lists(
                st.tuples(
                    st.integers(min_value=0, max_value=n - 1),
                    st.integers(min_value=0, max_value=n - 1),
                ),
                max_size=30,
            ),
            label="extra",
        )
        for u, v in extra:
            if u != v:
                edge_set.add((min(u, v), max(u, v)))
        graph = int_graph(n, sorted(edge_set))
        parts = data.draw(
            st.integers(min_value=1, max_value=6), label="partitions"
        )
        want_kappa = csr_decomposition(graph).kappa
        want_order = csr_decomposition(
            graph, executor="vector"
        ).processing_order
        got = external_decomposition(graph, partitions=parts)
        assert got.kappa == want_kappa
        assert got.processing_order == want_order


# ------------------------------------------------------------------ #
# reconciliation fixed point + floor admission
# ------------------------------------------------------------------ #


class TestReconciliation:
    def test_boundary_demotions_cross_seams(self):
        # A K5 forced into 5 single-ish partitions: every triangle's
        # demotions land on edges owned by other partitions, so a peel
        # that failed to iterate the seams to a fixed point could not
        # reach kappa == 3 everywhere.
        graph = complete_graph(5)
        info = {}
        got = external_decomposition(graph, partitions=5, info=info)
        assert set(got.kappa.values()) == {3}
        assert info["partitions"] >= 2
        # Sub-rounds scan every live partition: with >1 partition holding
        # triangles, passes must exceed the level count.
        assert info["passes"] > 1

    def test_dropped_demotion_breaks_identity(self):
        # The converse of the conformance bar: the injected seam bug (a
        # demotion discovered in a later partition never propagated) must
        # surface as a kappa divergence — proving the reconciliation loop
        # is load-bearing, not incidental.
        graph = erdos_renyi(24, 0.3, seed=5)
        want = csr_decomposition(graph).kappa
        with inject_boundary_drop_bug():
            got = external_decomposition(graph, partitions=3)
        assert got.kappa != want
        # and the flag restores: the very next run is clean again
        clean = external_decomposition(graph, partitions=3)
        assert clean.kappa == want

    def test_fixed_point_consumes_every_triangle(self):
        # After the peel reaches its fixed point no unconsumed triangle
        # may remain: support_sum accounts for every spilled triangle.
        graph = graph_zoo()["er_medium"]
        counters = {}
        external_decomposition(graph, partitions=4, counters=counters)
        ref_counters = {}
        csr_decomposition(graph, counters=ref_counters)
        assert counters == ref_counters

    def test_kappa_upper_bound_is_sound(self):
        for name in ("fig2", "k5", "two_k4", "er_medium"):
            graph = graph_zoo()[name]
            snap = CSRGraph.from_graph(graph)
            h = kappa_upper_bounds(snap)
            result = csr_decomposition(graph)
            labels = snap.edge_labels()
            endpoints = list(snap.edge_endpoints)
            for eid, edge in enumerate(labels):
                u, v = endpoints[2 * eid], endpoints[2 * eid + 1]
                assert result.kappa[edge] <= min(h[u], h[v]) - 1 + 1, (
                    name, edge
                )  # kappa <= min(h)-1; +1 slack is never needed:
                assert result.kappa[edge] <= max(min(h[u], h[v]) - 1, 0)

    def test_floor_admission_preserves_kappa_at_or_above_floor(self):
        # two_k4 has kappa 1 on the bridge star and 2 inside the cliques;
        # floor=2 may prune star-only partitions but every kappa >= 2
        # must come out exact.
        graph = graph_zoo()["two_k4"]
        want = csr_decomposition(graph).kappa
        for floor in (1, 2):
            info = {}
            got = external_decomposition(
                graph, partitions=6, floor=floor, info=info
            )
            assert {
                e: k for e, k in got.kappa.items() if k >= floor
            } == {e: k for e, k in want.items() if k >= floor}, floor
        # a floor above the max kappa prunes everything
        info = {}
        got = external_decomposition(
            graph, partitions=6, floor=50, info=info
        )
        assert info["bound_prune_hits"] == info["partitions"]
        assert all(k < 50 for k in got.kappa.values())

    def test_floor_zero_never_prunes(self):
        info = {}
        external_decomposition(graph_zoo()["two_k4"], partitions=6, info=info)
        assert info["bound_prune_hits"] == 0
        assert info["admitted"] == info["partitions"]


# ------------------------------------------------------------------ #
# spill-format fault matrix (pattern: tests/test_persistence.py)
# ------------------------------------------------------------------ #


class TestSpillFaults:
    def build(self, tmp_path, name="spill"):
        spill = str(tmp_path / name)
        ExternalCSR.build(
            graph_zoo()["er_medium"], spill, partitions=3
        ).close()
        return spill

    def test_spill_error_is_a_backend_error(self):
        assert issubclass(SpillError, BackendError)

    def test_missing_manifest(self, tmp_path):
        spill = self.build(tmp_path)
        manifest = os.path.join(spill, MANIFEST_NAME)
        os.remove(manifest)
        with pytest.raises(SpillError, match="manifest missing") as excinfo:
            ExternalCSR.open(spill)
        assert excinfo.value.path == manifest
        assert manifest in str(excinfo.value)

    def test_corrupt_manifest_json(self, tmp_path):
        spill = self.build(tmp_path)
        manifest = os.path.join(spill, MANIFEST_NAME)
        with open(manifest, "w", encoding="utf-8") as fh:
            fh.write("{not json")
        with pytest.raises(SpillError, match="invalid manifest JSON"):
            ExternalCSR.open(spill)

    def test_format_version_mismatch(self, tmp_path):
        spill = self.build(tmp_path)
        manifest = os.path.join(spill, MANIFEST_NAME)
        with open(manifest, encoding="utf-8") as fh:
            data = json.load(fh)
        data["format"] = "repro.spill-csr/999"
        with open(manifest, "w", encoding="utf-8") as fh:
            json.dump(data, fh)
        with pytest.raises(SpillError, match="unsupported spill format") \
                as excinfo:
            ExternalCSR.open(spill)
        assert SPILL_FORMAT in str(excinfo.value)
        assert excinfo.value.path == manifest

    def test_truncated_column_file(self, tmp_path):
        spill = self.build(tmp_path)
        column = os.path.join(spill, "indices.bin")
        size = os.path.getsize(column)
        with open(column, "r+b") as fh:
            fh.truncate(size // 2)
        with pytest.raises(SpillError, match="truncated column") as excinfo:
            ExternalCSR.open(spill)
        assert excinfo.value.path == column
        assert str(size) in str(excinfo.value)

    def test_missing_column_file(self, tmp_path):
        spill = self.build(tmp_path)
        column = os.path.join(spill, "indptr.bin")
        os.remove(column)
        with pytest.raises(SpillError, match="column missing") as excinfo:
            ExternalCSR.open(spill)
        assert excinfo.value.path == column

    def test_bad_checksum_caught_at_open(self, tmp_path):
        spill = self.build(tmp_path)
        column = os.path.join(spill, "arc_eids.bin")
        with open(column, "r+b") as fh:
            fh.seek(0)
            fh.write(b"\xff" * 8)
        with pytest.raises(SpillError, match="checksum mismatch") as excinfo:
            ExternalCSR.open(spill, verify=True)
        assert excinfo.value.path == column

    def test_partition_checksum_recheck_at_admission(self, tmp_path):
        # Corruption appearing *after* open (verify=False fast path) must
        # still surface at admission time, before any wrong triangle work.
        spill = self.build(tmp_path)
        ext = ExternalCSR.open(spill, verify=False)
        try:
            column = os.path.join(spill, "indices.bin")
            with open(column, "r+b") as fh:
                fh.write(b"\x7f" * 8)
            with pytest.raises(SpillError, match="partition 0") as excinfo:
                decompose_spill(ext)
            assert excinfo.value.path == column
        finally:
            ext.close()

    def test_spill_dir_deleted_mid_run(self, tmp_path):
        import shutil

        spill = self.build(tmp_path)
        ext = ExternalCSR.open(spill, verify=False)
        try:
            shutil.rmtree(spill)
            # Linux keeps the existing maps alive after the unlink, so
            # the fault surfaces at the next filesystem touch — the
            # partition checksum re-read (or, with verification already
            # spent, the scratch-directory creation).  Either way it is
            # the typed error naming a path inside the vanished dir.
            with pytest.raises(SpillError) as excinfo:
                decompose_spill(ext)
            assert excinfo.value.path.startswith(spill)
        finally:
            ext.close()

    def test_crc_helper_matches_zlib(self, tmp_path):
        payload = bytes(range(256)) * 41
        path = tmp_path / "blob.bin"
        path.write_bytes(payload)
        from repro.fast.external import _crc_of_file

        assert _crc_of_file(str(path)) == zlib.crc32(payload)
        assert _crc_of_file(str(path), 8, 16) == zlib.crc32(payload[8:24])


# ------------------------------------------------------------------ #
# crash cleanup (pattern: tests/test_shared_csr.py)
# ------------------------------------------------------------------ #


class TestCrashCleanup:
    def test_sigkilled_run_leaves_no_stale_scratch(self, tmp_path):
        # A child dies via os._exit(13) right after writing its first
        # triangle spill file; its scratch dir survives the crash, and the
        # next open must reap it (dead pid).
        spill = str(tmp_path / "spill")
        script = (
            "import os, sys\n"
            "os.environ['_REPRO_EXTERNAL_CRASH_TEST'] = '1'\n"
            "from repro.graph import erdos_renyi\n"
            "from repro.fast.external import external_decomposition\n"
            "external_decomposition(erdos_renyi(30, 0.2, seed=2), "
            f"spill_dir={spill!r}, partitions=3)\n"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [os.path.join(os.path.dirname(__file__), "..", "src")]
            + env.get("PYTHONPATH", "").split(os.pathsep)
        )
        proc = subprocess.run(
            [sys.executable, "-c", script], env=env, timeout=120
        )
        assert proc.returncode == 13
        stale = [
            d for d in os.listdir(spill) if d.startswith("scratch-")
        ]
        assert stale, "crash should have left a scratch directory behind"
        removed = cleanup_stale(spill)
        assert len(removed) == len(stale)
        assert not any(
            d.startswith("scratch-") for d in os.listdir(spill)
        )
        # and the spill itself is still usable afterwards
        ext = ExternalCSR.open(spill, verify=True)
        try:
            got = decompose_spill(ext)
        finally:
            ext.close()
        want = csr_decomposition(erdos_renyi(30, 0.2, seed=2))
        assert got.kappa == want.kappa

    def test_open_reaps_stale_scratch_automatically(self, tmp_path):
        spill = str(tmp_path / "spill")
        ExternalCSR.build(complete_graph(5), spill, partitions=2).close()
        fake = os.path.join(spill, "scratch-999999999-deadbeef")
        os.makedirs(fake)
        ext = ExternalCSR.open(spill, verify=False)
        ext.close()
        assert not os.path.exists(fake)

    def test_live_pid_scratch_left_alone(self, tmp_path):
        spill = str(tmp_path / "spill")
        ExternalCSR.build(complete_graph(5), spill, partitions=2).close()
        mine = os.path.join(spill, f"scratch-{os.getpid()}-cafe")
        os.makedirs(mine)
        try:
            assert cleanup_stale(spill) == []
            assert os.path.exists(mine)
        finally:
            os.rmdir(mine)

    def test_successful_run_leaves_no_scratch(self, tmp_path):
        spill = str(tmp_path / "spill")
        external_decomposition(
            complete_graph(6), spill_dir=spill, partitions=3
        )
        assert not any(
            d.startswith("scratch-") for d in os.listdir(spill)
        )


# ------------------------------------------------------------------ #
# RSS budget (numpy + resource hosts; recorded skip reasons elsewhere)
# ------------------------------------------------------------------ #

RSS_CHILD = r"""
import json, os, sys
BUILD = sys.argv[1]
SEED, N, TARGET_EDGES = 31, 32768, 250000

def edge_stream():
    # xorshift-ish LCG stream: deterministic, O(1) memory.
    state = SEED
    for _ in range(TARGET_EDGES):
        state = (state * 6364136223846793005 + 1442695040888963407) % (1 << 64)
        u = (state >> 20) % N
        v = (state >> 44) % N
        yield u, v

import resource
def rss():
    # ru_maxrss survives execve on Linux, so a child forked from a large
    # pytest parent inherits the parent's high-water mark and measures a
    # delta of 0.  VmHWM belongs to the process's own mm (reset on exec)
    # and uses the same kB units as Linux ru_maxrss; fall back to
    # ru_maxrss where /proc is unavailable.
    try:
        with open("/proc/self/status") as fh:
            for line in fh:
                if line.startswith("VmHWM:"):
                    return int(line.split()[1])
    except OSError:
        pass
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss

import numpy  # noqa: F401 - baseline includes numpy pages
baseline = rss()
if BUILD == "external":
    import tempfile
    from repro.fast.external import spill_edges, decompose_spill
    d = tempfile.mkdtemp(prefix="repro-rss-")
    ext = spill_edges(edge_stream(), N, d, memory_budget=64 << 20)
    try:
        kappa, order = decompose_spill(
            ext, memory_budget=64 << 20, decode=False
        )
        m = len(kappa)
    finally:
        ext.close()
        import shutil
        shutil.rmtree(d, ignore_errors=True)
else:
    from repro.graph import Graph
    from repro.fast import csr_decomposition
    g = Graph()
    for v in range(N):
        g.add_vertex(v)
    seen = set()
    for u, v in edge_stream():
        if u != v and (min(u, v), max(u, v)) not in seen:
            seen.add((min(u, v), max(u, v)))
            g.add_edge(u, v)
    del seen
    result = csr_decomposition(g)
    m = len(result.kappa)
print(json.dumps({"baseline": baseline, "peak": rss(), "edges": m}))
"""


class TestRSSBudget:
    CAP_BYTES = 64 << 20

    def run_child(self, mode):
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [os.path.join(os.path.dirname(__file__), "..", "src")]
            + env.get("PYTHONPATH", "").split(os.pathsep)
        )
        proc = subprocess.run(
            [sys.executable, "-c", RSS_CHILD, mode],
            env=env, capture_output=True, text=True, timeout=600,
        )
        assert proc.returncode == 0, proc.stderr[-2000:]
        return json.loads(proc.stdout.strip().splitlines()[-1])

    def test_external_stays_under_cap_that_in_ram_exceeds(self):
        try:
            import resource  # noqa: F401
        except ImportError:
            pytest.skip(
                "recorded skip: stdlib 'resource' unavailable on this host, "
                "RSS high-water cannot be measured"
            )
        if csr_mod.np is None:
            pytest.skip(
                "recorded skip: numpy unavailable — the pure kernels are too "
                "slow at the graph size the cap requires; the strict RSS "
                "gate is numpy-only by design"
            )
        ram = self.run_child("in-ram")
        ext = self.run_child("external")
        assert ext["edges"] == ram["edges"]  # same graph both sides
        ram_delta = maxrss_bytes(ram["peak"]) - maxrss_bytes(ram["baseline"])
        ext_delta = maxrss_bytes(ext["peak"]) - maxrss_bytes(ext["baseline"])
        # The in-RAM build must genuinely bust the cap on this graph —
        # otherwise the external assertion below would be vacuous.
        assert ram_delta > self.CAP_BYTES, (
            f"in-RAM delta {ram_delta} unexpectedly under the "
            f"{self.CAP_BYTES} cap; grow TARGET_EDGES"
        )
        assert ext_delta <= self.CAP_BYTES, (
            f"external peak delta {ext_delta} exceeds the "
            f"{self.CAP_BYTES} byte cap (in-RAM needed {ram_delta})"
        )

    def test_maxrss_helper_units(self):
        # Linux ru_maxrss is KiB; the helper must scale it to bytes.
        if sys.platform == "darwin":
            assert maxrss_bytes(4096) == 4096
        else:
            assert maxrss_bytes(4096) == 4096 * 1024


# ------------------------------------------------------------------ #
# engine / stats / CLI surface
# ------------------------------------------------------------------ #


class TestEngineSurface:
    def test_registered_in_engine(self):
        from repro.engine import Engine
        from repro.engine.engine import BACKENDS

        assert "external" in BACKENDS
        eng = Engine(max_cached_graphs=0)
        graph = complete_graph(6)
        want = csr_decomposition(graph)
        got = eng.decompose(graph, backend="external")
        assert got.kappa == want.kappa
        payload = eng.stats_dict()
        ext = payload["external"]
        assert ext["decompositions"] == 1
        assert ext["partitions"] == DEFAULT_PARTITIONS
        assert ext["passes"] > 0
        assert ext["bytes_mapped"] > 0
        assert ext["bound_prune_hits"] == 0

    def test_membership_refused(self):
        from repro.engine import Engine

        with pytest.raises(ValueError, match="membership"):
            Engine(max_cached_graphs=0).decompose(
                complete_graph(4), backend="external", store_membership=True
            )

    def test_auto_escalates_on_memory_budget(self):
        from repro.engine import Engine

        graph = erdos_renyi(40, 0.2, seed=0)
        assert Engine(
            max_cached_graphs=0, memory_budget=128
        ).resolve("auto", graph) == "external"
        assert Engine(max_cached_graphs=0).resolve(
            "auto", graph
        ) != "external"

    def test_memory_budget_validated(self):
        from repro.engine import Engine

        with pytest.raises(ValueError, match="memory_budget"):
            Engine(memory_budget=0)

    def test_cli_size_parser(self):
        from repro.cli import _parse_size

        assert _parse_size("256M") == 256 << 20
        assert _parse_size("1G") == 1 << 30
        assert _parse_size("64k") == 64 << 10
        assert _parse_size("12345") == 12345
        with pytest.raises(Exception, match="invalid size"):
            _parse_size("lots")

    def test_cli_decompose_with_external_backend(self, tmp_path, capsys):
        from repro.cli import main

        edge_file = tmp_path / "g.txt"
        edge_file.write_text(
            "".join(f"{u} {v}\n" for u, v in complete_graph(6).edges())
        )
        rc = main([
            "decompose", str(edge_file),
            "--backend", "external",
            "--spill-dir", str(tmp_path / "spill"),
            "--memory-budget", "16M",
            "--stats",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        payload = json.loads(out.strip().splitlines()[-1])
        assert payload["external"]["decompositions"] == 1
        assert payload["backend_calls"]["external"] == 1

    def test_oracle_registration(self):
        from repro.testing.oracles import (
            ORACLE_NAMES, CheckpointOracles, DEFAULT_ORACLES,
        )

        assert "external" in ORACLE_NAMES
        oracles = CheckpointOracles(
            DEFAULT_ORACLES + ("external",), external_partitions=3
        )
        graph = complete_graph(5)
        answers = oracles.evaluate(graph)
        assert answers["external"] == answers["csr"]
