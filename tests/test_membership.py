"""Unit tests for core-membership bookkeeping and Rule 1 recovery."""

import pytest

from repro.core import (
    CoreMembership,
    recover_membership_rule1,
    triangle_kcore_decomposition,
)
from repro.graph import complete_graph, erdos_renyi


class TestCoreMembership:
    def test_add_del_is_in(self):
        m = CoreMembership()
        m.add_to_core((1, 2, 3), (1, 2))
        assert m.is_in_core((1, 2, 3), (1, 2))
        m.del_from_core((1, 2, 3), (1, 2))
        assert not m.is_in_core((1, 2, 3), (1, 2))

    def test_is_in_core_unknown_edge(self):
        assert not CoreMembership().is_in_core((1, 2, 3), (1, 2))

    def test_del_unknown_edge_is_noop(self):
        CoreMembership().del_from_core((1, 2, 3), (9, 9))

    def test_count_and_triangles_of(self):
        m = CoreMembership()
        m.add_to_core((1, 2, 3), (1, 2))
        m.add_to_core((1, 2, 4), (1, 2))
        assert m.count((1, 2)) == 2
        assert m.triangles_of((1, 2)) == {(1, 2, 3), (1, 2, 4)}

    def test_drop_edge(self):
        m = CoreMembership()
        m.add_to_core((1, 2, 3), (1, 2))
        m.drop_edge((1, 2))
        assert m.count((1, 2)) == 0

    def test_copy_is_independent(self):
        m = CoreMembership()
        m.add_to_core((1, 2, 3), (1, 2))
        clone = m.copy()
        clone.del_from_core((1, 2, 3), (1, 2))
        assert m.is_in_core((1, 2, 3), (1, 2))


class TestMembershipInvariant:
    """The bookkeeping left by Algorithm 1 must certify every kappa value."""

    @pytest.mark.parametrize("seed", range(4))
    def test_membership_size_equals_kappa(self, seed):
        g = erdos_renyi(30, 0.3, seed=seed)
        result = triangle_kcore_decomposition(g, store_membership=True)
        assert result.membership is not None
        for edge, kappa in result.kappa.items():
            assert result.membership.count(edge) == kappa, edge

    def test_membership_triangles_stay_in_level(self):
        """Every triangle kept in an edge's core has all edges at >= kappa."""
        g = erdos_renyi(30, 0.3, seed=41)
        result = triangle_kcore_decomposition(g, store_membership=True)
        from repro.graph.edge import triangle_edges

        for edge, kappa in result.kappa.items():
            for triangle in result.membership.triangles_of(edge):
                for other in triangle_edges(triangle):
                    assert result.kappa[other] >= kappa


class TestRule1Recovery:
    """Rule 1: the last kappa(e) triangles by process time are the core."""

    @pytest.mark.parametrize("seed", range(4))
    def test_recovered_counts_match_kappa(self, seed):
        g = erdos_renyi(30, 0.3, seed=seed + 10)
        result = triangle_kcore_decomposition(g)
        recovered = recover_membership_rule1(g, result.kappa, result.order_index())
        for edge, kappa in result.kappa.items():
            assert recovered.count(edge) == kappa

    def test_recovered_membership_is_valid_core(self):
        """Recovered triangles satisfy the Theorem 1 level constraint."""
        g = complete_graph(6)
        result = triangle_kcore_decomposition(g)
        recovered = recover_membership_rule1(g, result.kappa, result.order_index())
        from repro.graph.edge import triangle_edges

        for edge in result.kappa:
            for triangle in recovered.triangles_of(edge):
                for other in triangle_edges(triangle):
                    assert result.kappa[other] >= result.kappa[edge]
