"""Unit tests for triangle enumeration and counting."""

import math

import pytest

from repro.graph import (
    Graph,
    complete_graph,
    count_triangles,
    edge_triangle_index,
    enumerate_triangles,
    erdos_renyi,
    global_clustering_coefficient,
    local_clustering,
    new_triangles_for_edge,
    triangle_degree,
    triangle_supports,
    triangles_of_edge,
)
from repro.graph.triangles import enumerate_open_wedges


class TestEnumeration:
    def test_complete_graph_counts(self):
        for n in range(3, 8):
            expected = math.comb(n, 3)
            assert count_triangles(complete_graph(n)) == expected

    def test_no_triangles_in_tree(self):
        g = Graph(edges=[(0, 1), (1, 2), (2, 3), (1, 4)])
        assert count_triangles(g) == 0

    def test_each_triangle_once(self, k5):
        triangles = list(enumerate_triangles(k5))
        assert len(triangles) == len(set(triangles)) == 10

    def test_canonical_form(self, triangle_graph):
        assert list(enumerate_triangles(triangle_graph)) == [(0, 1, 2)]

    def test_matches_per_edge_enumeration(self):
        g = erdos_renyi(40, 0.2, seed=5)
        from_global = set(enumerate_triangles(g))
        from_edges = set()
        for u, v in g.edges():
            from_edges.update(triangles_of_edge(g, u, v))
        assert from_global == from_edges

    def test_empty_graph(self):
        assert count_triangles(Graph()) == 0


class TestTrianglesOfEdge:
    def test_apexes_are_common_neighbors(self):
        g = Graph(edges=[(1, 2), (1, 3), (2, 3), (2, 4), (1, 4), (4, 5)])
        triangles = sorted(triangles_of_edge(g, 1, 2))
        assert triangles == [(1, 2, 3), (1, 2, 4)]

    def test_edge_without_triangles(self):
        g = Graph(edges=[(1, 2), (2, 3)])
        assert list(triangles_of_edge(g, 1, 2)) == []


class TestSupports:
    def test_k4_supports(self):
        supports = triangle_supports(complete_graph(4))
        assert set(supports.values()) == {2}
        assert len(supports) == 6

    def test_supports_match_common_neighbors(self):
        g = erdos_renyi(30, 0.3, seed=2)
        supports = triangle_supports(g)
        for (u, v), s in supports.items():
            assert s == len(g.common_neighbors(u, v))

    def test_index_lists_every_triangle_three_times(self, k5):
        index = edge_triangle_index(k5)
        total = sum(len(ts) for ts in index.values())
        assert total == 3 * 10

    def test_index_covers_all_edges(self):
        g = Graph(edges=[(1, 2), (3, 4)])
        index = edge_triangle_index(g)
        assert set(index) == {(1, 2), (3, 4)}
        assert all(ts == [] for ts in index.values())


class TestNewTriangles:
    def test_insertion_triangles(self):
        g = Graph(edges=[(1, 2), (2, 3), (1, 4), (3, 4)])
        new = new_triangles_for_edge(g, 1, 3)
        assert sorted(new) == [(1, 2, 3), (1, 3, 4)]

    def test_rejects_existing_edge(self, triangle_graph):
        with pytest.raises(ValueError):
            new_triangles_for_edge(triangle_graph, 0, 1)


class TestClustering:
    def test_clique_transitivity_is_one(self):
        assert global_clustering_coefficient(complete_graph(6)) == pytest.approx(1.0)

    def test_tree_transitivity_is_zero(self):
        g = Graph(edges=[(0, 1), (1, 2), (2, 3)])
        assert global_clustering_coefficient(g) == 0.0

    def test_local_clustering_triangle(self, triangle_graph):
        assert local_clustering(triangle_graph, 0) == pytest.approx(1.0)

    def test_local_clustering_low_degree(self):
        g = Graph(edges=[(0, 1)])
        assert local_clustering(g, 0) == 0.0

    def test_triangle_degree(self, k5):
        assert triangle_degree(k5, 0) == 6  # C(4,2) triangles through a K5 vertex


class TestOpenWedges:
    def test_path_has_one_wedge(self):
        g = Graph(edges=[(0, 1), (1, 2)])
        wedges = list(enumerate_open_wedges(g))
        assert len(wedges) == 1
        assert wedges[0][1] == 1  # center

    def test_triangle_has_no_open_wedges(self, triangle_graph):
        assert list(enumerate_open_wedges(triangle_graph)) == []
