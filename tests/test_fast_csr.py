"""Unit tests for the CSR snapshot and the flat-array kernels."""

from __future__ import annotations

import pytest

import repro.fast.csr as csr_module
from repro.fast import CSRGraph, peel, supports_and_triangles, triangle_supports
from repro.graph import Graph, complete_graph, erdos_renyi
from repro.graph.triangles import triangle_supports as reference_supports


@pytest.fixture(params=["numpy", "pure"])
def numpy_mode(request, monkeypatch):
    if request.param == "pure":
        monkeypatch.setattr(csr_module, "np", None)
    elif csr_module.np is None:  # pragma: no cover - numpy-less environment
        pytest.skip("numpy not installed")
    return request.param


class TestSnapshotStructure:
    def test_empty_graph(self, numpy_mode):
        csr = CSRGraph.from_graph(Graph())
        assert csr.num_vertices == 0
        assert csr.num_edges == 0
        assert list(csr.indptr) == [0]

    def test_relabeling_is_degree_ordered(self, numpy_mode):
        graph = Graph(edges=[(0, 1), (0, 2), (0, 3), (1, 2)])
        csr = CSRGraph.from_graph(graph)
        degrees = [csr.degree(u) for u in range(csr.num_vertices)]
        assert degrees == sorted(degrees)

    def test_adjacency_blocks_sorted(self, numpy_mode):
        csr = CSRGraph.from_graph(erdos_renyi(30, 0.3, seed=3))
        for u in range(csr.num_vertices):
            block = list(csr.neighbors(u))
            assert block == sorted(block)
            assert u not in block

    def test_forward_start_splits_blocks(self, numpy_mode):
        csr = CSRGraph.from_graph(erdos_renyi(30, 0.3, seed=4))
        for u in range(csr.num_vertices):
            start, fstart, end = (
                csr.indptr[u],
                csr.forward_start[u],
                csr.indptr[u + 1],
            )
            assert start <= fstart <= end
            assert all(csr.indices[p] < u for p in range(start, fstart))
            assert all(csr.indices[p] > u for p in range(fstart, end))

    def test_edge_ids_are_dense_and_consistent(self, numpy_mode):
        graph = erdos_renyi(25, 0.3, seed=5)
        csr = CSRGraph.from_graph(graph)
        seen = set()
        for u in range(csr.num_vertices):
            for p in range(csr.indptr[u], csr.indptr[u + 1]):
                v = csr.indices[p]
                eid = csr.arc_eids[p]
                assert 0 <= eid < csr.num_edges
                assert eid == csr.edge_id(u, v) == csr.edge_id(v, u)
                seen.add(eid)
        assert seen == set(range(csr.num_edges))

    def test_edge_id_missing_edge_raises(self, numpy_mode):
        csr = CSRGraph.from_graph(Graph(edges=[(0, 1), (2, 3)]))
        lonely = csr.index[0]
        other = csr.index[2]
        with pytest.raises(ValueError):
            csr.edge_id(lonely, other)

    def test_edge_labels_round_trip(self, numpy_mode):
        graph = Graph(edges=[("b", "a"), ("b", "c"), ("a", "c"), ("c", "d")])
        csr = CSRGraph.from_graph(graph)
        assert set(csr.edge_labels()) == set(graph.edges())
        for eid, edge in enumerate(csr.edge_labels()):
            assert csr.edge_label(eid) == edge


class TestKernels:
    def test_supports_match_reference(self, numpy_mode):
        graph = erdos_renyi(35, 0.25, seed=6)
        csr = CSRGraph.from_graph(graph)
        supports = triangle_supports(csr)
        expected = reference_supports(graph, backend="reference")
        decoded = dict(zip(csr.edge_labels(), supports))
        assert decoded == expected

    def test_triangle_list_consistent_with_supports(self, numpy_mode):
        csr = CSRGraph.from_graph(erdos_renyi(25, 0.35, seed=7))
        supports, tri_edges = supports_and_triangles(csr)
        assert len(tri_edges) % 3 == 0
        assert sum(supports) == len(tri_edges)
        recounted = [0] * csr.num_edges
        for eid in tri_edges:
            recounted[eid] += 1
        assert recounted == supports

    def test_peel_on_clique(self, numpy_mode):
        csr = CSRGraph.from_graph(complete_graph(6))
        kappa, order = peel(csr)
        assert set(kappa) == {4}
        assert sorted(order) == list(range(csr.num_edges))

    def test_peel_rejects_mismatched_precomputed(self, numpy_mode):
        csr = CSRGraph.from_graph(complete_graph(4))
        supports, _ = supports_and_triangles(csr)
        with pytest.raises(ValueError, match="supports_and_triangles"):
            peel(csr, (supports, []))

    def test_peel_empty_graph(self, numpy_mode):
        assert peel(CSRGraph.from_graph(Graph())) == ([], [])
