"""Tests for the command-line interface."""

import pytest


def _numpy_available() -> bool:
    try:
        import numpy  # noqa: F401
    except ImportError:
        return False
    return True

from repro.cli import build_parser, main
from repro.graph import Graph, write_edge_list


@pytest.fixture
def edge_file(tmp_path):
    g = Graph(edges=[(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (2, 4)])
    path = tmp_path / "g.edges"
    write_edge_list(g, path)
    return str(path)


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_known_subcommands(self):
        parser = build_parser()
        for command in ("decompose", "plot", "update", "templates", "datasets"):
            args = parser.parse_args(
                [command] + {
                    "decompose": ["synthetic"],
                    "plot": ["synthetic"],
                    "update": ["synthetic"],
                    "templates": ["a", "b"],
                    "datasets": [],
                }[command]
            )
            assert args.command == command


class TestDecompose:
    def test_on_edge_file(self, edge_file, capsys):
        assert main(["decompose", edge_file]) == 0
        out = capsys.readouterr().out
        assert "max kappa = 1" in out
        assert "|E|=6" in out

    def test_writes_output(self, edge_file, tmp_path, capsys):
        out_path = tmp_path / "kappa.txt"
        assert main(["decompose", edge_file, "-o", str(out_path)]) == 0
        lines = out_path.read_text().strip().splitlines()
        assert len(lines) == 6
        assert all(len(line.split()) == 3 for line in lines)

    def test_on_dataset_name(self, capsys):
        assert main(["decompose", "synthetic"]) == 0
        assert "kappa histogram" in capsys.readouterr().out

    def test_membership_with_csr_backend_is_rejected(self, edge_file, capsys):
        # PR 1 error path: the CSR kernels cannot track AddToCore/DelFromCore
        # state, so an explicit csr request with membership must fail loudly.
        assert main(
            ["decompose", edge_file, "--backend", "csr", "--membership"]
        ) == 2
        err = capsys.readouterr().err
        assert "--membership" in err
        assert "reference" in err

    def test_membership_with_auto_backend_degrades(self, edge_file, capsys):
        # PR 1 degradation path: auto silently falls back to the reference
        # implementation when membership bookkeeping is requested.
        assert main(
            ["decompose", edge_file, "--backend", "auto", "--membership"]
        ) == 0
        out = capsys.readouterr().out
        assert "membership:" in out
        assert "max kappa = 1" in out

    def test_explicit_csr_backend_without_membership_works(
        self, edge_file, capsys
    ):
        assert main(["decompose", edge_file, "--backend", "csr"]) == 0
        assert "max kappa = 1" in capsys.readouterr().out


class TestPlot:
    def test_ascii(self, edge_file, capsys):
        assert main(["plot", edge_file, "--height", "5", "--width", "40"]) == 0
        assert "+" in capsys.readouterr().out

    def test_svg(self, edge_file, tmp_path, capsys):
        svg_path = tmp_path / "out.svg"
        assert main(["plot", edge_file, "--svg", str(svg_path)]) == 0
        assert svg_path.read_text().startswith("<svg")


class TestUpdate:
    def test_update_agrees_and_reports(self, capsys):
        assert main(["update", "synthetic", "--fraction", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "incremental update" in out
        assert "recompute" in out


class TestTemplates:
    def test_new_form_between_files(self, tmp_path, capsys):
        # A star keeps all five vertices present in the edge-list file (the
        # format cannot represent isolated vertices).
        old = Graph(edges=[(v, 9) for v in range(5)])
        new = old.copy()
        for u in range(5):
            for v in range(u + 1, 5):
                new.add_edge(u, v)
        old_path, new_path = tmp_path / "old.edges", tmp_path / "new.edges"
        write_edge_list(old, old_path)
        write_edge_list(new, new_path)
        assert main(
            ["templates", str(old_path), str(new_path), "--pattern", "new_form"]
        ) == 0
        out = capsys.readouterr().out
        assert "New Form Clique" in out
        assert "~5-vertex" in out


class TestDatasets:
    @pytest.mark.skipif(
        not _numpy_available(),
        reason="`datasets` loads the R-MAT stand-ins, which need numpy",
    )
    def test_lists_all(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        for name in ("synthetic", "stocks", "ppi", "dblp", "livejournal"):
            assert name in out


class TestCommunities:
    def test_level_listing(self, edge_file, capsys):
        assert main(["communities", edge_file, "--level", "1"]) == 0
        out = capsys.readouterr().out
        assert "triangle-connected communities" in out

    def test_vertex_query(self, edge_file, capsys):
        assert main(["communities", edge_file, "--vertex", "0"]) == 0
        out = capsys.readouterr().out
        assert "densest community" in out


class TestReport:
    def test_writes_html(self, edge_file, tmp_path, capsys):
        out_path = tmp_path / "report.html"
        assert main(["report", edge_file, "-o", str(out_path)]) == 0
        text = out_path.read_text()
        assert text.startswith("<!DOCTYPE html>")
        assert "<svg" in text


class TestEvents:
    def test_snapshot_files(self, tmp_path, capsys):
        before = Graph(edges=[(u, v) for u in range(6) for v in range(u + 1, 6)])
        after = Graph(
            edges=[(u, v) for u in range(9) for v in range(u + 1, 9)]
        )
        p1, p2 = tmp_path / "a.edges", tmp_path / "b.edges"
        write_edge_list(before, p1)
        write_edge_list(after, p2)
        assert main(["events", str(p1), str(p2)]) == 0
        out = capsys.readouterr().out
        assert "grow" in out

    def test_builtin_dataset(self, capsys):
        assert main(
            ["events", "--dataset", "wiki_snapshots", "--min-kappa", "4"]
        ) == 0
        assert "merge" in capsys.readouterr().out

    def test_dataset_without_snapshots(self, capsys):
        assert main(["events", "--dataset", "synthetic"]) == 1
        assert "no snapshots" in capsys.readouterr().out

    def test_decompose_json_output(self, edge_file, tmp_path, capsys):
        out_path = tmp_path / "kappa.json"
        assert main(["decompose", edge_file, "-o", str(out_path)]) == 0
        from repro.core import load_result

        result = load_result(out_path)
        assert len(result.kappa) == 6


class TestNewSubcommands:
    def test_hierarchy(self, edge_file, capsys):
        assert main(["hierarchy", edge_file]) == 0
        assert "level" in capsys.readouterr().out

    def test_maxcore(self, edge_file, capsys):
        assert main(["maxcore", edge_file]) == 0
        out = capsys.readouterr().out
        assert "densest Triangle K-Core" in out
        assert "kappa 1" in out

    def test_probe_exact(self, edge_file, capsys):
        assert main(["probe", edge_file, "0", "1", "--radius", "2"]) == 0
        out = capsys.readouterr().out
        assert "exact" in out

    def test_probe_string_vertices(self, tmp_path, capsys):
        g = Graph(edges=[("a", "b"), ("b", "c"), ("a", "c")])
        path = tmp_path / "s.edges"
        write_edge_list(g, path)
        assert main(["probe", str(path), "a", "b"]) == 0
        assert "[1, 1]" in capsys.readouterr().out

    def test_missing_file_friendly_error(self, capsys):
        assert main(["decompose", "/no/such/file.edges"]) == 2
        assert "no such file" in capsys.readouterr().err

    def test_library_error_friendly(self, edge_file, capsys):
        # Probe a non-existent edge -> EdgeNotFoundError -> exit 2.
        assert main(["probe", edge_file, "0", "99"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_robustness_subcommand(self, capsys):
        assert main(
            ["robustness", "synthetic", "--fractions", "0.1", "--trials", "1"]
        ) == 0
        out = capsys.readouterr().out
        assert "baseline densest core" in out
        assert "breakdown" in out


class TestFuzz:
    def test_clean_run_exits_zero(self, capsys):
        assert main(
            ["fuzz", "--seed", "0", "--ops", "60", "--checkpoint-every", "30"]
        ) == 0
        out = capsys.readouterr().out
        assert "no divergence" in out
        for profile in ("uniform", "churn", "triangle_bursts"):
            assert profile in out

    def test_single_profile_selection(self, capsys):
        assert main(
            ["fuzz", "--ops", "40", "--profile", "churn"]
        ) == 0
        out = capsys.readouterr().out
        assert "churn" in out
        assert "uniform" not in out

    def test_perturbed_self_test_detects_shrinks_and_dumps(
        self, tmp_path, capsys
    ):
        bundle_path = tmp_path / "bundle.json"
        assert main(
            [
                "fuzz",
                "--ops", "200",
                "--profile", "triangle_bursts",
                "--perturb-level", "1",
                "--shrink",
                "--out", str(bundle_path),
            ]
        ) == 1
        out = capsys.readouterr().out
        assert "DIVERGED" in out
        assert "shrunk" in out
        assert bundle_path.exists()
        from repro.testing import ReproBundle

        bundle = ReproBundle.load(bundle_path)
        assert len(bundle.script) <= 10
        assert bundle.divergence is not None

    def test_replay_round_trip(self, tmp_path, capsys):
        bundle_path = tmp_path / "bundle.json"
        main(
            [
                "fuzz",
                "--ops", "200",
                "--profile", "triangle_bursts",
                "--perturb-level", "1",
                "--shrink",
                "--out", str(bundle_path),
            ]
        )
        capsys.readouterr()
        # The shrunk script replays clean against the *real* maintainer...
        assert main(["fuzz", "--replay", str(bundle_path)]) == 0
        assert "replay clean" in capsys.readouterr().out
        # ...and still trips the injected bug when asked to re-inject it.
        assert main(
            ["fuzz", "--replay", str(bundle_path), "--perturb-level", "1"]
        ) == 1
        assert "DIVERGED" in capsys.readouterr().out


class TestEngineFlags:
    """PR 3: ``--stats`` / ``--backend`` wiring and the dualview subcommand."""

    @staticmethod
    def _last_line_stats(capsys):
        import json

        lines = capsys.readouterr().out.strip().splitlines()
        payload = json.loads(lines[-1])
        assert payload["schema"] == "repro.engine.stats/6"
        return payload

    def test_decompose_stats_json(self, edge_file, capsys):
        assert main(["decompose", edge_file, "--stats"]) == 0
        payload = self._last_line_stats(capsys)
        assert payload["counters"]["decompositions"] == 1
        assert payload["counters"]["triangles_enumerated"] == 2
        assert payload["backend_calls"] in (
            {"reference": 1},
            {"csr": 1},
        )
        assert payload["stage_seconds"]

    def test_decompose_dynamic_backend(self, edge_file, capsys):
        assert main(
            ["decompose", edge_file, "--backend", "dynamic", "--stats"]
        ) == 0
        payload = self._last_line_stats(capsys)
        assert payload["counters"]["dynamic_cold_starts"] == 1

    def test_membership_with_dynamic_backend_is_rejected(
        self, edge_file, capsys
    ):
        assert main(
            ["decompose", edge_file, "--backend", "dynamic", "--membership"]
        ) == 2
        assert "reference" in capsys.readouterr().err

    def test_events_stats_json(self, capsys):
        assert main(["events", "--dataset", "wiki_snapshots", "--stats"]) == 0
        payload = self._last_line_stats(capsys)
        assert payload["counters"]["decompositions"] >= 1

    def test_events_dynamic_backend_matches_default(self, capsys):
        assert main(["events", "--dataset", "wiki_snapshots"]) == 0
        default_out = capsys.readouterr().out
        assert main(
            ["events", "--dataset", "wiki_snapshots", "--backend", "dynamic"]
        ) == 0
        assert capsys.readouterr().out == default_out

    def test_dualview_ascii_and_stats(self, tmp_path, capsys):
        old = Graph(edges=[(0, 1), (1, 2), (0, 2)])
        new = Graph(edges=[(0, 1), (1, 2), (0, 2), (0, 3), (1, 3), (2, 3)])
        old_path, new_path = tmp_path / "old.edges", tmp_path / "new.edges"
        write_edge_list(old, old_path)
        write_edge_list(new, new_path)
        assert main(
            ["dualview", str(old_path), str(new_path), "--stats"]
        ) == 0
        out = capsys.readouterr().out
        assert "+3 / -0 edges" in out
        import json

        payload = json.loads(out.strip().splitlines()[-1])
        assert payload["counters"]["maintainers_built"] == 1

    def test_dualview_svg_pair(self, tmp_path, capsys):
        old = Graph(edges=[(0, 1), (1, 2), (0, 2)])
        new = Graph(edges=[(0, 1), (1, 2), (0, 2), (2, 3), (1, 3)])
        old_path, new_path = tmp_path / "old.edges", tmp_path / "new.edges"
        write_edge_list(old, old_path)
        write_edge_list(new, new_path)
        prefix = str(tmp_path / "dv")
        assert main(
            ["dualview", str(old_path), str(new_path), "--svg", prefix]
        ) == 0
        assert (tmp_path / "dv_before.svg").exists()
        assert (tmp_path / "dv_after.svg").exists()

    def test_robustness_methods_agree(self, capsys):
        args = ["robustness", "synthetic", "--fractions", "0.1",
                "--trials", "2", "--seed", "3"]
        assert main(args + ["--method", "dynamic"]) == 0
        dynamic_out = capsys.readouterr().out
        assert main(args + ["--method", "recompute"]) == 0
        assert capsys.readouterr().out == dynamic_out

    def test_stats_flag_on_other_subcommands(self, edge_file, capsys):
        for argv in (
            ["plot", edge_file, "--stats"],
            ["communities", edge_file, "--stats"],
            ["hierarchy", edge_file, "--stats"],
            ["probe", edge_file, "0", "1", "--stats"],
        ):
            assert main(argv) == 0, argv
            self._last_line_stats(capsys)
