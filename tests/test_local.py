"""Tests for local kappa bounds."""

import random

import pytest

from repro.core import (
    ball_vertices,
    edge_ball,
    kappa_bounds,
    kappa_lower_bound,
    kappa_upper_bound,
    triangle_kcore_decomposition,
)
from repro.exceptions import EdgeNotFoundError
from repro.graph import Graph, complete_graph, erdos_renyi


class TestBalls:
    def test_radius_zero_is_endpoints(self, k5):
        assert ball_vertices(k5, 0, 1, 0) == {0, 1}

    def test_radius_one_in_clique_is_everything(self, k5):
        assert ball_vertices(k5, 0, 1, 1) == set(k5.vertices())

    def test_path_radii(self):
        g = Graph(edges=[(0, 1), (1, 2), (2, 3), (3, 4)])
        assert ball_vertices(g, 0, 1, 1) == {0, 1, 2}
        assert ball_vertices(g, 0, 1, 2) == {0, 1, 2, 3}

    def test_edge_ball_is_induced(self):
        g = complete_graph(4)
        g.add_edge(3, 9)
        ball = edge_ball(g, 0, 1, 1)
        assert ball.has_edge(2, 3)  # induced edges kept
        assert not ball.has_vertex(9)


class TestBounds:
    def test_clique_exact_at_radius_one(self):
        for n in (4, 5, 6, 7):
            g = complete_graph(n)
            assert kappa_lower_bound(g, 0, 1, radius=1) == n - 2
            assert kappa_upper_bound(g, 0, 1, sweeps=1) == n - 2

    def test_zero_sweeps_is_support(self, fig2_graph):
        assert kappa_upper_bound(fig2_graph, "B", "C", sweeps=0) == 3

    def test_sweeps_tighten(self, fig2_graph):
        values = [
            kappa_upper_bound(fig2_graph, "B", "C", sweeps=s) for s in range(4)
        ]
        assert values == sorted(values, reverse=True)
        assert values[-1] == 2  # converged to kappa

    def test_radius_tightens_lower_bound(self):
        # A long "chain of diamonds" so the max core is far from the edge.
        g = Graph()
        for i in range(6):
            a, b, c, d = 10 * i, 10 * i + 1, 10 * i + 2, 10 * (i + 1)
            for x, y in [(a, b), (a, c), (b, c), (b, d), (c, d)]:
                g.add_edge(x, y, exist_ok=True)
        result = triangle_kcore_decomposition(g)
        true = result.kappa_of(0, 1)
        lows = [kappa_lower_bound(g, 0, 1, radius=r) for r in (1, 2, 4)]
        assert lows == sorted(lows)
        assert lows[-1] <= true

    @pytest.mark.parametrize("seed", range(4))
    def test_bounds_bracket_truth(self, seed):
        g = erdos_renyi(35, 0.3, seed=seed)
        result = triangle_kcore_decomposition(g)
        rng = random.Random(seed)
        edges = sorted(g.edges(), key=repr)
        for u, v in rng.sample(edges, 10):
            lo, hi = kappa_bounds(g, u, v, radius=2, sweeps=2)
            assert lo <= result.kappa_of(u, v) <= hi

    def test_large_budget_converges(self):
        g = erdos_renyi(25, 0.35, seed=9)
        result = triangle_kcore_decomposition(g)
        for u, v in sorted(g.edges(), key=repr)[:10]:
            lo, hi = kappa_bounds(g, u, v, radius=6, sweeps=6)
            assert lo == hi == result.kappa_of(u, v)

    def test_missing_edge_raises(self, k5):
        with pytest.raises(EdgeNotFoundError):
            kappa_lower_bound(k5, 0, 99)
        with pytest.raises(EdgeNotFoundError):
            kappa_upper_bound(k5, 0, 99)
