"""Tests for the nested community hierarchy."""

import pytest

from repro.core import (
    CommunityHierarchy,
    dense_communities,
    triangle_kcore_decomposition,
)
from repro.graph import Graph, complete_graph, erdos_renyi


def butterfly_with_halo():
    """K5 and K4 sharing vertex 0, plus a loose triangle fringe."""
    g = complete_graph(5)
    for u in (10, 11, 12):
        g.add_edge(0, u)
    for i, u in enumerate((10, 11, 12)):
        for v in (10, 11, 12)[i + 1 :]:
            g.add_edge(u, v)
    g.add_edge(4, 20)
    g.add_edge(0, 20)
    return g


class TestStructure:
    def test_roots_are_level_one_communities(self):
        g = butterfly_with_halo()
        hierarchy = CommunityHierarchy(g)
        assert all(root.first_level == 1 for root in hierarchy.roots)

    def test_children_nest_strictly(self):
        g = butterfly_with_halo()
        hierarchy = CommunityHierarchy(g)
        for node in hierarchy.walk():
            for child in node.children:
                assert child.edges < node.edges
                assert child.parent is node
                assert child.first_level > node.first_level

    def test_chain_collapse_keeps_deepest_level(self):
        """A lone K5 persists unchanged from level 1 to 3: one node."""
        hierarchy = CommunityHierarchy(complete_graph(5))
        assert len(hierarchy.roots) == 1
        root = hierarchy.roots[0]
        assert root.first_level == 1
        assert root.level == 3
        assert root.children == []
        assert root.estimated_clique_size == 5

    def test_densest_leaf_matches_max_kappa(self):
        for seed in range(3):
            g = erdos_renyi(35, 0.3, seed=seed)
            result = triangle_kcore_decomposition(g)
            hierarchy = CommunityHierarchy(g, result)
            if result.max_kappa == 0:
                assert hierarchy.roots == []
                continue
            leaves = hierarchy.densest_leaves()
            assert leaves[0].level == result.max_kappa

    def test_leaves_cover_dense_communities(self):
        g = butterfly_with_halo()
        result = triangle_kcore_decomposition(g)
        hierarchy = CommunityHierarchy(g, result)
        leaf_vertex_sets = {
            frozenset(leaf.vertices) for leaf in hierarchy.densest_leaves()
        }
        # The two dense cliques appear as leaves.
        assert frozenset(range(5)) in leaf_vertex_sets
        assert frozenset({0, 10, 11, 12}) in leaf_vertex_sets

    def test_triangle_free_graph_has_empty_forest(self):
        g = Graph(edges=[(0, 1), (1, 2), (2, 3)])
        hierarchy = CommunityHierarchy(g)
        assert hierarchy.roots == []
        assert hierarchy.densest_leaves() == []

    def test_walk_visits_every_node_once(self):
        g = butterfly_with_halo()
        hierarchy = CommunityHierarchy(g)
        nodes = list(hierarchy.walk())
        assert len(nodes) == len({id(n) for n in nodes})


class TestAsciiTree:
    def test_renders_spans_and_sizes(self):
        hierarchy = CommunityHierarchy(complete_graph(6))
        text = hierarchy.ascii_tree()
        assert "levels 1-4" in text
        assert "6 vertices" in text

    def test_max_children_truncation(self):
        g = Graph()
        # One big loose level-1 blob with many level-2 children: several
        # K4s sharing a common triangle fan... simpler: many disjoint K4s
        # are separate roots, so instead check truncation on a fabricated
        # wide node by lowering max_children on a real two-child case.
        g = butterfly_with_halo()
        hierarchy = CommunityHierarchy(g)
        text = hierarchy.ascii_tree(max_children=1)
        if any(len(n.children) > 1 for n in hierarchy.walk()):
            assert "more" in text
