"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import random
import sys

import pytest

from repro.graph import Graph, complete_graph, erdos_renyi


def maxrss_bytes(ru_maxrss: int) -> int:
    """Normalize a ``resource.getrusage().ru_maxrss`` value to bytes.

    POSIX leaves the unit unspecified: Linux reports kilobytes, macOS
    reports bytes.  Every RSS assertion in the suite goes through this so
    the budget tests mean the same thing on both.
    """
    if sys.platform == "darwin":
        return int(ru_maxrss)
    return int(ru_maxrss) * 1024


def current_maxrss_bytes() -> int:
    """This process's peak RSS high-water mark, in bytes.

    Raises :class:`ImportError` where the stdlib ``resource`` module is
    unavailable (non-POSIX hosts) — callers skip with a recorded reason.
    """
    import resource

    return maxrss_bytes(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)


@pytest.fixture
def triangle_graph() -> Graph:
    """A single triangle."""
    return Graph(edges=[(0, 1), (1, 2), (0, 2)])


@pytest.fixture
def fig2_graph() -> Graph:
    """The paper's Figure 2 walk-through graph.

    Vertices A-E; {B,C,D,E} is a K4, A hangs off B and C forming one extra
    triangle ABC.
    """
    return Graph(
        edges=[
            ("A", "B"),
            ("A", "C"),
            ("B", "C"),
            ("B", "D"),
            ("B", "E"),
            ("C", "D"),
            ("C", "E"),
            ("D", "E"),
        ]
    )


@pytest.fixture
def fig3_original_graph() -> Graph:
    """The paper's Figure 3 graph before edge AC is added (solid edges)."""
    return Graph(
        edges=[
            ("A", "B"),
            ("B", "C"),
            ("A", "E"),
            ("A", "F"),
            ("E", "F"),
            ("C", "D"),
            ("C", "E"),
            ("D", "E"),
        ]
    )


@pytest.fixture
def k5() -> Graph:
    return complete_graph(5)


@pytest.fixture
def two_cliques_sharing_vertex() -> Graph:
    """Two K4s sharing a single vertex (distinct triangle-connected cores)."""
    g = complete_graph(4)  # 0..3
    for u in (10, 11, 12):
        g.add_edge(3, u)
    for i, u in enumerate((10, 11, 12)):
        for v in (10, 11, 12)[i + 1 :]:
            g.add_edge(u, v)
    return g


def random_graph(seed: int, n: int = 30, p: float = 0.2) -> Graph:
    """Deterministic random graph for parametrized tests."""
    return erdos_renyi(n, p, seed=seed)


def random_edit_script(graph: Graph, steps: int, seed: int):
    """Yield (op, u, v) tuples toggling random vertex pairs."""
    rng = random.Random(seed)
    vertices = sorted(graph.vertices(), key=repr)
    state = graph.copy()
    for _ in range(steps):
        u, v = rng.sample(vertices, 2)
        if state.has_edge(u, v):
            state.remove_edge(u, v)
            yield ("remove", u, v)
        else:
            state.add_edge(u, v)
            yield ("add", u, v)
