"""Unit tests for the Graph substrate."""

import pytest

from repro.exceptions import (
    EdgeExistsError,
    EdgeNotFoundError,
    SelfLoopError,
    VertexNotFoundError,
)
from repro.graph import Graph, complete_graph


class TestConstruction:
    def test_empty(self):
        g = Graph()
        assert g.num_vertices == 0
        assert g.num_edges == 0

    def test_from_edges(self):
        g = Graph(edges=[(1, 2), (2, 3)])
        assert g.num_vertices == 3
        assert g.num_edges == 2

    def test_from_vertices_and_edges(self):
        g = Graph(edges=[(1, 2)], vertices=[9])
        assert g.has_vertex(9)
        assert g.degree(9) == 0

    def test_duplicate_edges_in_constructor_collapsed(self):
        g = Graph(edges=[(1, 2), (2, 1), (1, 2)])
        assert g.num_edges == 1


class TestMutation:
    def test_add_vertex_idempotent_report(self):
        g = Graph()
        assert g.add_vertex("a") is True
        assert g.add_vertex("a") is False

    def test_add_edge_creates_endpoints(self):
        g = Graph()
        g.add_edge(1, 2)
        assert g.has_vertex(1) and g.has_vertex(2)

    def test_add_duplicate_edge_raises(self):
        g = Graph(edges=[(1, 2)])
        with pytest.raises(EdgeExistsError):
            g.add_edge(2, 1)

    def test_add_duplicate_edge_exist_ok(self):
        g = Graph(edges=[(1, 2)])
        assert g.add_edge(2, 1, exist_ok=True) is False
        assert g.num_edges == 1

    def test_self_loop_rejected(self):
        g = Graph()
        with pytest.raises(SelfLoopError):
            g.add_edge(1, 1)

    def test_remove_edge(self):
        g = Graph(edges=[(1, 2), (2, 3)])
        g.remove_edge(2, 1)
        assert not g.has_edge(1, 2)
        assert g.num_edges == 1

    def test_remove_missing_edge_raises(self):
        g = Graph(edges=[(1, 2)])
        with pytest.raises(EdgeNotFoundError):
            g.remove_edge(1, 3)

    def test_remove_missing_edge_missing_ok(self):
        g = Graph(edges=[(1, 2)])
        assert g.remove_edge(1, 3, missing_ok=True) is False

    def test_remove_vertex_drops_incident_edges(self):
        g = Graph(edges=[(1, 2), (1, 3), (2, 3)])
        g.remove_vertex(1)
        assert g.num_edges == 1
        assert not g.has_vertex(1)

    def test_remove_missing_vertex_raises(self):
        with pytest.raises(VertexNotFoundError):
            Graph().remove_vertex("ghost")

    def test_clear(self):
        g = Graph(edges=[(1, 2)])
        g.clear()
        assert g.num_vertices == 0
        assert g.num_edges == 0

    def test_edge_count_stays_consistent_through_churn(self):
        g = Graph()
        for i in range(10):
            for j in range(i + 1, 10):
                g.add_edge(i, j)
        assert g.num_edges == 45
        g.remove_vertex(0)
        assert g.num_edges == 36
        g.remove_edge(1, 2)
        assert g.num_edges == 35
        assert g.num_edges == sum(1 for _ in g.edges())


class TestQueries:
    def test_edges_canonical_and_unique(self):
        g = Graph(edges=[(2, 1), (3, 2)])
        assert sorted(g.edges()) == [(1, 2), (2, 3)]

    def test_neighbors(self):
        g = Graph(edges=[(1, 2), (1, 3)])
        assert g.neighbors(1) == {2, 3}

    def test_neighbors_missing_vertex(self):
        with pytest.raises(VertexNotFoundError):
            Graph().neighbors(1)

    def test_degree(self):
        g = complete_graph(5)
        assert all(g.degree(v) == 4 for v in g.vertices())

    def test_common_neighbors(self):
        g = Graph(edges=[(1, 2), (1, 3), (2, 3), (2, 4), (1, 4)])
        assert g.common_neighbors(1, 2) == {3, 4}

    def test_edge_support(self, k5):
        assert k5.edge_support(0, 1) == 3

    def test_contains_len_iter(self):
        g = Graph(edges=[(1, 2)])
        assert 1 in g
        assert len(g) == 2
        assert set(iter(g)) == {1, 2}

    def test_equality(self):
        a = Graph(edges=[(1, 2), (2, 3)])
        b = Graph(edges=[(2, 3), (1, 2)])
        assert a == b
        b.add_edge(1, 3)
        assert a != b

    def test_repr(self):
        assert repr(Graph(edges=[(1, 2)])) == "Graph(|V|=2, |E|=1)"


class TestDerivedGraphs:
    def test_copy_is_independent(self):
        g = Graph(edges=[(1, 2)])
        clone = g.copy()
        clone.add_edge(2, 3)
        assert g.num_edges == 1
        assert clone.num_edges == 2

    def test_subgraph(self, k5):
        sub = k5.subgraph([0, 1, 2])
        assert sub.num_vertices == 3
        assert sub.num_edges == 3

    def test_subgraph_ignores_foreign_vertices(self, k5):
        sub = k5.subgraph([0, 1, 99])
        assert sub.num_vertices == 2

    def test_edge_subgraph(self, k5):
        sub = k5.edge_subgraph([(0, 1), (1, 2)])
        assert sub.num_edges == 2

    def test_edge_subgraph_rejects_missing_edge(self):
        g = Graph(edges=[(1, 2)])
        with pytest.raises(EdgeNotFoundError):
            g.edge_subgraph([(1, 3)])

    def test_connected_components(self):
        g = Graph(edges=[(1, 2), (3, 4)], vertices=[9])
        components = sorted(g.connected_components(), key=lambda c: min(str(x) for x in c))
        assert {1, 2} in components
        assert {3, 4} in components
        assert {9} in components


class TestCompleteGraph:
    def test_size(self):
        g = complete_graph(6)
        assert g.num_vertices == 6
        assert g.num_edges == 15

    def test_offset(self):
        g = complete_graph(3, offset=10)
        assert set(g.vertices()) == {10, 11, 12}


class TestExceptionHierarchy:
    def test_all_library_errors_are_repro_errors(self):
        from repro.exceptions import (
            DatasetError,
            DecompositionError,
            EdgeExistsError,
            EdgeNotFoundError,
            GraphError,
            ReproError,
            SelfLoopError,
            StaleIndexError,
            TemplateError,
            ValidationError,
            VertexNotFoundError,
        )

        for error_type in (
            DatasetError, DecompositionError, EdgeExistsError,
            EdgeNotFoundError, GraphError, SelfLoopError, StaleIndexError,
            TemplateError, ValidationError, VertexNotFoundError,
        ):
            assert issubclass(error_type, ReproError), error_type

    def test_lookup_errors_are_also_keyerrors(self):
        from repro.exceptions import EdgeNotFoundError, VertexNotFoundError

        assert issubclass(EdgeNotFoundError, KeyError)
        assert issubclass(VertexNotFoundError, KeyError)

    def test_value_errors(self):
        from repro.exceptions import EdgeExistsError, SelfLoopError

        assert issubclass(EdgeExistsError, ValueError)
        assert issubclass(SelfLoopError, ValueError)

    def test_one_except_clause_catches_everything(self):
        from repro.exceptions import ReproError

        g = Graph(edges=[(1, 2)])
        caught = 0
        for action in (
            lambda: g.remove_edge(5, 6),
            lambda: g.neighbors("ghost"),
            lambda: g.add_edge(1, 1),
        ):
            try:
                action()
            except ReproError:
                caught += 1
        assert caught == 3
