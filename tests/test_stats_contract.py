"""The ``--stats`` output contract, across every stats-bearing subcommand.

Contract: with ``--stats``, a subcommand's **last stdout line** is exactly
one JSON object validating against the engine stats schema
(``repro.engine.stats/6``) — everything human-readable goes above it, so
scripts can always ``tail -1 | jq``.  The ``serve`` subcommand honours the
same contract by dumping stats after its SIGTERM drain, and ``shell`` by
dumping stats after its last command.

Also pins the package version single-source-of-truth:
``repro.__version__`` == ``pyproject.toml`` == ``--version`` output.
"""

import json
import os
import re
import signal
import subprocess
import sys
from pathlib import Path

import pytest

from repro.cli import main
from repro.graph import Graph, write_edge_list

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Required top-level keys of the stats /6 schema.
STATS_KEYS = {
    "schema",
    "counters",
    "backend_calls",
    "stage_seconds",
    "parallel",
    "peel",
    "external",
    "batch",
    "workspace",
    "default_backend",
    "cached_graphs",
    "cached_artifacts",
}


def assert_stats_contract(stdout: str) -> dict:
    """The last non-empty stdout line is one valid stats JSON object."""
    lines = [line for line in stdout.strip().splitlines() if line.strip()]
    assert lines, "no output produced"
    payload = json.loads(lines[-1])
    assert isinstance(payload, dict)
    assert payload["schema"] == "repro.engine.stats/6"
    assert STATS_KEYS <= set(payload), sorted(STATS_KEYS - set(payload))
    # Exactly one JSON object: the line above it (if any) must NOT parse
    # as a JSON object (it is human-readable prose).
    if len(lines) > 1:
        try:
            previous = json.loads(lines[-2])
        except json.JSONDecodeError:
            previous = None
        assert not isinstance(previous, dict), "two stats objects emitted"
    return payload


@pytest.fixture
def edge_file(tmp_path):
    g = Graph(edges=[(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (2, 4)])
    path = tmp_path / "g.edges"
    write_edge_list(g, path)
    return str(path)


def _stats_argvs(edge_file, tmp_path):
    return [
        ["decompose", edge_file, "--stats"],
        ["plot", edge_file, "--stats"],
        ["communities", edge_file, "--stats"],
        ["hierarchy", edge_file, "--stats"],
        ["probe", edge_file, "0", "1", "--stats"],
        ["update", edge_file, "--fraction", "0.2", "--stats"],
        ["events", "--dataset", "wiki_snapshots", "--stats"],
        ["robustness", edge_file, "--fractions", "0.1", "--trials", "1",
         "--stats"],
        [
            "report", edge_file, "-o", str(tmp_path / "r.html"), "--stats",
        ],
    ]


class TestSchemaCompat:
    """Each schema bump is a strict superset of its predecessor.

    Mirrors the /1 -> /2 pattern: a reader written against /5 (or /1-/4)
    keeps working against /6 because no key was renamed or removed — /4
    only added the "peel" section and the "transport"/"bytes_shipped"
    members of "parallel", /5 only added the "external" section, and /6
    only added the "workspace" section.
    """

    V3_KEYS = {
        "schema", "counters", "backend_calls", "stage_seconds",
        "parallel", "batch",
    }
    V4_KEYS = V3_KEYS | {"peel"}
    V5_KEYS = V4_KEYS | {"external"}

    def test_v6_is_strict_superset_of_v3_through_v5(self):
        from repro.engine import EngineStats

        payload = EngineStats().as_dict()
        assert self.V3_KEYS < set(payload)
        assert self.V4_KEYS < set(payload)
        assert self.V5_KEYS < set(payload)
        assert set(payload) - self.V5_KEYS == {"workspace"}

    def test_workspace_section_populates_from_workspace_use(self):
        from repro.engine import Engine
        from repro.graph import complete_graph
        from repro.workspace import Workspace

        engine = Engine()
        ws = Workspace(engine=engine)
        ws.add_graph("k6", complete_graph(6))
        ws.create_view("hot", "slice", "k6", {"k": 1})
        ws.decompose("hot")
        section = engine.stats_dict()["workspace"]
        assert section["graphs"] == 1
        assert section["views"] == 1
        assert section["views_created"] == 1
        assert section["materializations"] >= 1

    def test_external_section_populates_from_external_run(self):
        from repro.engine import Engine
        from repro.graph import complete_graph

        engine = Engine(max_cached_graphs=0)
        engine.decompose(complete_graph(6), backend="external")
        section = engine.stats_dict()["external"]
        assert section["decompositions"] == 1
        assert section["partitions"] >= 1
        assert section["passes"] >= 1
        assert section["bytes_mapped"] > 0
        assert section["bound_prune_hits"] == 0

    def test_peel_section_populates_from_vector_run(self):
        from repro.engine import Engine
        from repro.graph import complete_graph

        engine = Engine(max_cached_graphs=0)
        engine.decompose(complete_graph(6), backend="csr-vec")
        section = engine.stats_dict()["peel"]
        assert section["executor"] == "vector"
        assert section["runs"] == 1
        assert section["levels"] >= 1

    def test_peel_section_accumulates_across_runs(self):
        from repro.engine import Engine
        from repro.graph import complete_graph

        engine = Engine(max_cached_graphs=0)
        engine.decompose(complete_graph(6), backend="csr-vec")
        engine.decompose(complete_graph(5), backend="csr")
        section = engine.stats_dict()["peel"]
        assert section["executor"] == "scalar"  # most recent run
        assert section["runs"] == 2


class TestStatsContract:
    @pytest.mark.parametrize(
        "index", range(9), ids=lambda i: f"subcommand-{i}"
    )
    def test_every_stats_subcommand_obeys_the_contract(
        self, edge_file, tmp_path, capsys, index
    ):
        argv = _stats_argvs(edge_file, tmp_path)[index]
        assert main(argv) == 0, argv
        assert_stats_contract(capsys.readouterr().out)

    def test_templates_and_dualview(self, edge_file, tmp_path, capsys):
        other = Graph(
            edges=[(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (2, 4), (0, 3)]
        )
        other_path = tmp_path / "other.edges"
        write_edge_list(other, other_path)
        for argv in (
            ["templates", edge_file, str(other_path), "--stats"],
            ["dualview", edge_file, str(other_path), "--stats"],
        ):
            assert main(argv) == 0, argv
            assert_stats_contract(capsys.readouterr().out)

    def test_shell_emits_exactly_one_stats_object(self, tmp_path, capsys):
        script = tmp_path / "script.txt"
        script.write_text(
            "load g karate\nview slice hot g 2\nrun decompose hot\n"
        )
        assert main(["shell", "--script", str(script), "--stats"]) == 0
        payload = assert_stats_contract(capsys.readouterr().out)
        assert payload["workspace"]["commands"] == 3
        assert payload["workspace"]["views"] == 1
        assert payload["workspace"]["graphs"] == 1

    def test_without_flag_no_stats_line(self, edge_file, capsys):
        assert main(["decompose", edge_file]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        with pytest.raises(json.JSONDecodeError):
            json.loads(lines[-1])


class TestServeStatsContract:
    """``serve --stats``: dump-on-exit after a clean SIGTERM drain."""

    def _spawn(self, *extra):
        env = {**os.environ}
        env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        return subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve", "synthetic",
                "--port", "0", *extra,
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            env=env,
        )

    def _port_of(self, proc) -> int:
        line = proc.stdout.readline()
        match = re.search(r"on http://[^:]+:(\d+)", line)
        assert match, f"no announce line: {line!r}"
        return int(match.group(1))

    def test_sigterm_drains_cleanly_with_stats_last_line(self):
        import urllib.request

        proc = self._spawn("--stats")
        try:
            port = self._port_of(proc)
            with urllib.request.urlopen(
                f"http://127.0.0.1:{port}/healthz", timeout=10
            ) as response:
                health = json.loads(response.read())
            assert health["status"] == "ok"
            proc.send_signal(signal.SIGTERM)
            out, err = proc.communicate(timeout=60)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()
        assert proc.returncode == 0, err
        payload = assert_stats_contract(out)
        assert payload["service"]["requests"]["healthz"]["count"] == 1
        assert "drained cleanly" in out

    def test_sigterm_without_stats_exits_zero(self):
        proc = self._spawn()
        try:
            self._port_of(proc)
            proc.send_signal(signal.SIGTERM)
            out, err = proc.communicate(timeout=60)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()
        assert proc.returncode == 0, err
        assert out.strip().endswith("drained cleanly")


class TestVersionFlag:
    def test_version_prints_and_exits_zero(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out.strip()
        from repro import __version__

        assert out == f"triangle-kcore {__version__}"

    def test_single_source_of_truth_vs_pyproject(self):
        from repro import __version__

        text = (REPO_ROOT / "pyproject.toml").read_text()
        match = re.search(
            r'^version\s*=\s*"([^"]+)"', text, flags=re.MULTILINE
        )
        assert match, "pyproject.toml has no version field"
        assert match.group(1) == __version__
