"""Tests for the interactive HTML explorer (structure + embedded data)."""

import json
import re

import pytest

from repro.core import triangle_kcore_decomposition
from repro.graph import complete_graph
from repro.viz import (
    density_plot,
    dual_view_explorer_html,
    dual_view_plots,
    explorer_html,
    save_explorer,
)


def extract_json(document: str, variable: str) -> dict:
    match = re.search(rf"const {variable} = (\{{.*?\}});", document)
    assert match, f"{variable} not embedded"
    return json.loads(match.group(1))


@pytest.fixture
def plot(k5):
    result = triangle_kcore_decomposition(k5)
    return density_plot(k5, result, title="K5 & <friends>")


class TestExplorerHtml:
    def test_document_structure(self, plot):
        doc = explorer_html(plot, title="probe <script>")
        assert doc.startswith("<!DOCTYPE html>")
        assert "<canvas" in doc
        assert "attachExplorer" in doc
        # Title is escaped.
        assert "probe &lt;script&gt;" in doc
        assert "<script>alert" not in doc

    def test_embedded_data_matches_plot(self, plot):
        doc = explorer_html(plot)
        data = extract_json(doc, "PLOT_DATA")
        assert data["order"] == [str(v) for v in plot.order]
        assert data["heights"] == plot.heights
        assert data["title"] == "K5 & <friends>"

    def test_save(self, plot, tmp_path):
        path = tmp_path / "explorer.html"
        save_explorer(explorer_html(plot), str(path))
        assert path.read_text().startswith("<!DOCTYPE html>")


class TestDualViewExplorer:
    @pytest.fixture
    def plots(self):
        g = complete_graph(4)
        return dual_view_plots(g, added=[(0, 9), (1, 9), (0, 8), (9, 8)])

    def test_two_payloads(self, plots):
        doc = dual_view_explorer_html(plots)
        before = extract_json(doc, "BEFORE_DATA")
        after = extract_json(doc, "AFTER_DATA")
        assert set(before["order"]) <= set(after["order"])
        assert len(after["order"]) == len(plots.after.order)

    def test_cross_view_wiring_present(self, plots):
        doc = dual_view_explorer_html(plots)
        assert "beforeView.redraw(new Set(members))" in doc
        assert doc.count("<canvas") == 2

    def test_vertices_stringified_consistently(self, plots):
        doc = dual_view_explorer_html(plots)
        after = extract_json(doc, "AFTER_DATA")
        assert all(isinstance(v, str) for v in after["order"])
