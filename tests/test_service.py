"""End-to-end tests of the query service: conformance, edits, backpressure.

Most tests drive a real :class:`BackgroundServer` over loopback with the
typed :class:`ServiceClient` — the same path production traffic takes.
The conformance classes assert the acceptance criteria of the service:

* read endpoints are **bit-identical** to offline ``Engine`` calls on the
  same graph at the same version;
* after ``POST /edits``, ``GET /kappa`` matches a from-scratch recompute
  oracle (PR 2 workload profiles replayed over HTTP);
* overload produces bounded-queue rejections (429/503), never hangs;
* every response carries a monotonically non-decreasing ``version``.
"""

import json
import threading

import pytest

from repro.core import triangle_kcore_decomposition
from repro.engine import Engine
from repro.graph import Graph, complete_graph
from repro.service import (
    BackgroundServer,
    ServiceClient,
    ServiceClientError,
    ServiceOverloadError,
    ServiceState,
)
from repro.testing import generate
from repro.testing.editscript import EditScript, apply_op


def make_fixture_graph() -> Graph:
    """K5 + pendant triangle + isolated vertex: all kappa levels 0..3."""
    g = complete_graph(5)
    g.add_edge(0, 10)
    g.add_edge(1, 10)
    g.add_edge(10, 11)
    g.add_vertex(99)
    return g


@pytest.fixture(scope="module")
def server():
    with BackgroundServer(make_fixture_graph()) as background:
        yield background


@pytest.fixture()
def client(server):
    with ServiceClient("127.0.0.1", server.port) as c:
        yield c


class TestReadConformance:
    """Service answers == offline engine answers on the same graph."""

    def test_kappa_matches_offline_for_every_edge(self, client):
        graph = make_fixture_graph()
        result = triangle_kcore_decomposition(graph)
        for (u, v), expected in result.kappa.items():
            answer = client.kappa(u, v)
            assert answer.kappa == expected, (u, v)
            assert answer.version == 0

    def test_community_matches_offline_index(self, client):
        from repro.core import CommunityIndex

        graph = make_fixture_graph()
        index = CommunityIndex(graph)
        for vertex in graph.vertices():
            level, members = index.densest_community_of_vertex(vertex)
            answer = client.community(vertex)
            assert answer.level == level
            assert set(answer.members) == set(members)
            assert not answer.degraded

    def test_community_at_level_k(self, client):
        answer = client.community(0, k=3)
        assert answer.level == 3
        assert set(answer.members) == {0, 1, 2, 3, 4}

    def test_hierarchy_matches_offline(self, client):
        from repro.core import CommunityHierarchy

        graph = make_fixture_graph()
        offline = CommunityHierarchy(graph)
        answer = client.hierarchy()
        assert answer.max_level == triangle_kcore_decomposition(graph).max_kappa
        assert len(answer.roots) == len(offline.roots)
        by_size = sorted(root["size"] for root in answer.roots)
        assert by_size == sorted(root.size for root in offline.roots)

    def test_templates_match_offline_detection(self, client):
        from repro.templates import BUILTIN_TEMPLATES, detect_on_snapshots

        graph = make_fixture_graph()
        detection = detect_on_snapshots(
            graph, graph, BUILTIN_TEMPLATES["stable"]
        )
        answer = client.templates("stable")
        assert answer.characteristic_triangles == len(
            detection.characteristic_triangles
        )
        assert answer.special_edges == len(detection.special_edges)

    def test_healthz_shape(self, client):
        health = client.healthz()
        assert health.status == "ok"
        assert health.vertices == make_fixture_graph().num_vertices
        assert health.edges == make_fixture_graph().num_edges
        assert health.max_kappa == 3
        assert not health.draining

    def test_stats_has_engine_and_service_sections(self, client):
        stats = client.stats()
        assert stats["schema"] == "repro.engine.stats/6"
        service = stats["service"]
        assert service["schema"] == "repro.service/1"
        assert service["graph"]["edges"] == make_fixture_graph().num_edges
        assert "kappa" in service["requests"]
        summary = service["requests"]["kappa"]
        assert summary["count"] >= 1
        assert {"p50_ms", "p95_ms", "p99_ms"} <= set(summary)


class TestErrors:
    def test_kappa_missing_edge_404(self, client):
        with pytest.raises(ServiceClientError) as excinfo:
            client.kappa(0, 99)
        assert excinfo.value.status == 404
        assert excinfo.value.code == "not_found"

    def test_community_missing_vertex_404(self, client):
        with pytest.raises(ServiceClientError) as excinfo:
            client.community("nobody-here")
        assert excinfo.value.status == 404

    def test_community_bad_k_400(self, client):
        with pytest.raises(ServiceClientError) as excinfo:
            client.community(0, k=0)
        assert excinfo.value.status == 400

    def test_unknown_template_404(self, client):
        with pytest.raises(ServiceClientError) as excinfo:
            client.templates("does_not_exist")
        assert excinfo.value.status == 404

    def test_kappa_missing_params_400(self, client):
        status, _ = 0, None
        with pytest.raises(ServiceClientError) as excinfo:
            client.request("GET", "/kappa?u=1")
        assert excinfo.value.status == 400

    def test_malformed_edit_script_400(self, client):
        with pytest.raises(ServiceClientError) as excinfo:
            client.request("POST", "/edits", body={"not-ops": True})
        assert excinfo.value.status == 400

    def test_unknown_path_404(self, client):
        with pytest.raises(ServiceClientError) as excinfo:
            client.request("GET", "/nope")
        assert excinfo.value.status == 404


class TestEdits:
    """Each test gets a private server (edits mutate state)."""

    def run_script_and_check_oracle(
        self, script: EditScript, *, strategy=None, start=None
    ):
        start_graph = start if start is not None else make_fixture_graph()
        with BackgroundServer(start_graph.copy()) as server:
            with ServiceClient("127.0.0.1", server.port) as client:
                outcome = client.edits(script, strategy=strategy)
                # Oracle: replay the same script structurally and
                # decompose from scratch.
                oracle_graph = start_graph.copy()
                for op in script:
                    apply_op(oracle_graph, op)
                oracle = triangle_kcore_decomposition(oracle_graph)
                assert outcome.max_kappa == oracle.max_kappa
                for (u, v), expected in oracle.kappa.items():
                    assert client.kappa(u, v).kappa == expected, (u, v)
                # And the server serves exactly the oracle's edge set.
                served_edges = client.healthz().edges
                assert served_edges == oracle_graph.num_edges
                return outcome

    def test_add_edges_updates_kappa(self):
        outcome = self.run_script_and_check_oracle(
            EditScript.from_json_obj(
                {"ops": [["add", 11, 0], ["add", 11, 1]]}
            )
        )
        assert outcome.applied == 2
        assert outcome.rejected == {}

    def test_invalid_ops_rejected_not_fatal(self):
        outcome = self.run_script_and_check_oracle(
            EditScript.from_json_obj(
                {
                    "ops": [
                        ["add", 7, 7],  # self loop
                        ["add", 0, 1],  # duplicate
                        ["remove", 0, 55],  # missing edge
                        ["remove_vertex", 1234],  # missing vertex
                        ["add", 50, 51],  # fine
                    ]
                }
            )
        )
        assert outcome.applied == 1
        assert outcome.rejected == {
            "self_loop": 1,
            "duplicate": 1,
            "missing_edge": 1,
            "missing_vertex": 1,
        }

    def test_remove_vertex_cascades(self):
        outcome = self.run_script_and_check_oracle(
            EditScript.from_json_obj({"ops": [["remove_vertex", 0]]})
        )
        assert outcome.deleted > 0

    @pytest.mark.parametrize("strategy", ["incremental", "batch", "recompute"])
    def test_strategies_agree(self, strategy):
        script = generate("uniform", seed=5, n_ops=40)
        self.run_script_and_check_oracle(script, strategy=strategy)

    def test_batch_strategy_counts_rejections(self):
        """Batch coalescing must classify adversarial ops like per-op."""
        outcome = self.run_script_and_check_oracle(
            generate("adversarial", seed=2, n_ops=30), strategy="batch"
        )
        assert sum(outcome.rejected.values()) > 0
        assert outcome.applied + sum(outcome.rejected.values()) == 30

    def test_batch_edits_feed_engine_batch_stats(self):
        """A batch /edits must show up in the /stats ``batch`` section."""
        with BackgroundServer(make_fixture_graph()) as server:
            with ServiceClient("127.0.0.1", server.port) as client:
                before = client.stats().get("batch", {})
                client.edits(
                    generate("triangle_bursts", seed=9, n_ops=25),
                    strategy="batch",
                )
                after = client.stats()["batch"]
                assert after["applies"] == before.get("applies", 0) + 1
                assert after["settle_iterations"] >= before.get(
                    "settle_iterations", 0
                )

    @pytest.mark.parametrize(
        "profile", ["uniform", "churn", "triangle_bursts", "grow_shrink", "adversarial"]
    )
    def test_workload_profiles_over_http(self, profile):
        """PR 2 workload profiles replayed through POST /edits."""
        script = generate(profile, seed=11, n_ops=60)
        self.run_script_and_check_oracle(script)

    def test_version_monotonic_across_batches_and_strategies(self):
        with BackgroundServer(make_fixture_graph()) as server:
            with ServiceClient("127.0.0.1", server.port) as client:
                seen = [client.healthz().version]
                for strategy in ("incremental", "batch", "recompute", None):
                    outcome = client.edits(
                        generate("churn", seed=3, n_ops=25),
                        strategy=strategy,
                    )
                    seen.append(outcome.version)
                    seen.append(client.healthz().version)
                assert seen == sorted(seen)
                assert len(set(seen[1:])) > 1  # versions actually advanced

    def test_read_your_writes(self):
        with BackgroundServer(make_fixture_graph()) as server:
            with ServiceClient("127.0.0.1", server.port) as client:
                outcome = client.edits([("add", 11, 0), ("add", 11, 1)])
                answer = client.kappa(11, 0)
                assert answer.kappa >= 1  # triangle (0, 1, 11) exists now
                assert answer.version >= outcome.version

    def test_bad_strategy_400(self):
        with BackgroundServer(make_fixture_graph()) as server:
            with ServiceClient("127.0.0.1", server.port) as client:
                with pytest.raises(ServiceClientError) as excinfo:
                    client.edits([("add", 1, 50)], strategy="telepathy")
                assert excinfo.value.status == 400


class TestBackpressure:
    def test_queue_overflow_rejects_with_503(self):
        # One slow handler at a time + tiny queue => pile-up => 503s.
        with BackgroundServer(
            make_fixture_graph(), max_queue=2, handler_delay=0.2
        ) as server:
            overloaded = []
            answered = []

            def worker():
                with ServiceClient("127.0.0.1", server.port) as c:
                    try:
                        answered.append(c.healthz())
                    except ServiceOverloadError as error:
                        overloaded.append(error)

            threads = [threading.Thread(target=worker) for _ in range(12)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=30)
            assert overloaded, "expected at least one 503 overloaded"
            assert all(e.status == 503 for e in overloaded)
            assert all(e.code == "overloaded" for e in overloaded)
            assert answered, "some requests should still succeed"
            stats = ServiceClient("127.0.0.1", server.port).stats()
            assert stats["service"]["rejected"]["overloaded"] == len(
                overloaded
            )
            assert stats["service"]["queue"]["max"] == 2

    def test_rate_limit_rejects_with_429_and_retry_after(self):
        with BackgroundServer(
            make_fixture_graph(), rate_limit=1.0, rate_burst=2.0
        ) as server:
            with ServiceClient("127.0.0.1", server.port) as client:
                client.kappa(0, 1)
                client.kappa(0, 1)
                with pytest.raises(ServiceOverloadError) as excinfo:
                    client.kappa(0, 1)
                assert excinfo.value.status == 429
                assert excinfo.value.code == "rate_limited"
                assert excinfo.value.retry_after is not None
                assert excinfo.value.retry_after >= 0
                # /healthz is exempt so monitoring keeps working.
                assert client.healthz().status == "ok"

    def test_queue_age_shedding(self):
        with BackgroundServer(
            make_fixture_graph(),
            handler_delay=0.3,
            request_timeout=0.01,
            max_queue=64,
        ) as server:
            outcomes = []

            def worker():
                with ServiceClient("127.0.0.1", server.port) as c:
                    try:
                        c.kappa(0, 1)
                        outcomes.append("ok")
                    except ServiceOverloadError as error:
                        outcomes.append(error.code)

            threads = [threading.Thread(target=worker) for _ in range(6)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=60)
            assert "timed_out" in outcomes

    def test_degraded_reads_marked_and_counted(self):
        # degrade_after=0 means every dispatched read may serve stale.
        with BackgroundServer(
            make_fixture_graph(), degrade_after=0
        ) as server:
            with ServiceClient("127.0.0.1", server.port) as client:
                client.community(0)  # materialize the cache at version 0
                client.edits([("add", 11, 0), ("add", 11, 1)])
                answer = client.community(0)
                assert answer.degraded
                assert answer.answered_at_version == 0
                assert answer.version > 0
                stats = client.stats()
                assert stats["service"]["degraded_reads"] >= 1
                # Kappa reads never degrade: the new triangles are visible.
                assert client.kappa(11, 0).kappa >= 1

    def test_exact_reads_when_not_degraded(self):
        with BackgroundServer(make_fixture_graph()) as server:
            with ServiceClient("127.0.0.1", server.port) as client:
                client.community(0)
                client.edits([("add", 11, 0), ("add", 11, 1)])
                answer = client.community(10)
                assert not answer.degraded
                assert answer.answered_at_version == answer.version
                assert 11 in answer.members


class TestServiceState:
    """Direct (no-HTTP) checks of state-layer invariants."""

    def test_shared_engine_cache_is_warm_after_startup(self):
        engine = Engine(default_backend="reference")
        graph = make_fixture_graph()
        ServiceState(graph, backend="reference", engine=engine)
        stats = engine.stats_dict()
        assert stats["counters"]["decompositions"] == 1  # seeded once

    def test_state_usable_without_server(self):
        state = ServiceState(make_fixture_graph())
        payload = state.kappa("0", "1")
        assert payload["kappa"] == 3
        outcome = state.apply_edits(
            EditScript.from_json_obj({"ops": [["add", 11, 0]]})
        )
        assert outcome["applied"] == 1
        assert state.version > 0

    def test_templates_against_startup_baseline(self):
        state = ServiceState(make_fixture_graph())
        state.apply_edits(
            EditScript.from_json_obj(
                {"ops": [["add", 20, 21], ["add", 21, 22], ["add", 20, 22]]}
            )
        )
        payload = state.templates("new_form")
        assert payload["characteristic_triangles"] == 0  # new vertices, not
        # original ones: not a New Form clique (needs 3 original vertices)
        payload = state.templates("stable")
        assert payload["characteristic_triangles"] > 0

    def test_rejects_bad_edit_strategy_config(self):
        with pytest.raises(ValueError):
            ServiceState(make_fixture_graph(), edit_strategy="nope")


class TestDrain:
    def test_background_server_drains_and_stops(self):
        server = BackgroundServer(make_fixture_graph())
        server.start()
        with ServiceClient("127.0.0.1", server.port) as client:
            assert client.healthz().status == "ok"
        server.stop()
        # After drain the socket is closed: new connections fail.
        with pytest.raises(ServiceClientError):
            ServiceClient(
                "127.0.0.1", server.port, timeout=2, retries=0
            ).healthz()

    def test_stop_is_idempotent(self):
        server = BackgroundServer(make_fixture_graph())
        server.start()
        server.stop()
        server.stop()
