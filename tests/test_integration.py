"""Integration tests: the paper's workflows end to end on real datasets.

These are the library-level counterparts of the benchmark harness — each
test walks one of the paper's case studies on the synthetic stand-in
dataset and asserts the qualitative findings.
"""

import pytest

from repro.analysis import clique_report, find_plateaus, top_plateaus
from repro.core import (
    DynamicTriangleKCore,
    dense_communities,
    triangle_kcore_decomposition,
)
from repro.datasets import (
    ASTROLOGY_CLIQUE,
    ASTRONOMY_CLIQUE,
    BRIDGE_GROUP_NETWORK,
    BRIDGE_GROUP_STREAMS,
    CLIQUE1_PROTEINS,
    CLIQUE2_PROTEINS,
    CLIQUE3_PROTEINS,
    NEW_FORM_AUTHORS,
    NEW_JOIN_JOINERS,
    NEW_JOIN_SEED_AUTHORS,
    load,
    snapshot_pair,
)
from repro.graph import graph_diff, random_edge_sample, random_non_edges
from repro.templates import (
    BRIDGE,
    NEW_FORM,
    NEW_JOIN,
    detect_on_snapshots,
    detect_template_cliques,
    labeling_from_partition,
)
from repro.viz import density_plot, dual_view_from_snapshots, plot_similarity


class TestFig7PPICaseStudy:
    """Density plot surfaces the three planted cliques."""

    @pytest.fixture(scope="class")
    def ppi_plot(self):
        dataset = load("ppi")
        result = triangle_kcore_decomposition(dataset.graph)
        return dataset, density_plot(dataset.graph, result)

    def test_three_top_plateaus_are_the_planted_cliques(self, ppi_plot):
        """Each planted clique appears as a tall plateau.  The OPTICS-style
        reachability heights dip on each region's entry vertex (the edge
        that *reached* the region is weaker than the region itself), so a
        plateau may miss one boundary member — same as CSV's plots."""
        dataset, plot = ppi_plot
        plateaus = find_plateaus(plot, min_height=8)
        plateau_vertex_sets = [set(p.vertices) for p in plateaus]
        for planted in (CLIQUE1_PROTEINS, CLIQUE2_PROTEINS, CLIQUE3_PROTEINS):
            best_overlap = max(
                len(set(planted) & vertices) for vertices in plateau_vertex_sets
            )
            assert best_overlap >= len(planted) - 1, planted

    def test_clique2_reads_as_10(self, ppi_plot):
        dataset, plot = ppi_plot
        heights = dict(zip(plot.order, plot.heights))
        assert max(heights[p] for p in CLIQUE2_PROTEINS) == 10

    def test_clique3_reads_as_9_due_to_missing_edge(self, ppi_plot):
        """Paper: 'it is shown to be 9-vertex clique, because the edge
        between APC4 and CDC16 is missed'."""
        dataset, plot = ppi_plot
        heights = dict(zip(plot.order, plot.heights))
        assert max(heights[p] for p in CLIQUE3_PROTEINS) == 9


class TestFig8DualViewWiki:
    @pytest.fixture(scope="class")
    def dual(self):
        dataset = load("wiki_snapshots")
        return dataset, dual_view_from_snapshots(*dataset.snapshots)

    def test_after_view_shows_grown_astronomy_clique(self, dual):
        dataset, plots = dual
        heights = dict(zip(plots.after.order, plots.after.heights))
        # The merged 11-clique contains new edges, so it stands out.
        assert max(heights[a] for a in ASTRONOMY_CLIQUE) == 11

    def test_before_view_separates_the_two_origins(self, dual):
        dataset, plots = dual
        heights = dict(zip(plots.before.order, plots.before.heights))
        assert max(heights[a] for a in ASTRONOMY_CLIQUE) == 10
        # Astrology's home clique plots at height 5 (its own vertex may be
        # the region's entry point and dip, so check the clique's peak).
        assert max(heights[a] for a in ASTROLOGY_CLIQUE) == 5
        assert heights["Astrology"] <= 5

    def test_untouched_background_is_zeroed_in_after_view(self, dual):
        dataset, plots = dual
        added = set(plots.added_edges)
        heights = dict(zip(plots.after.order, plots.after.heights))
        touched = {v for edge in added for v in edge}
        untouched = [
            v for v in plots.after.order if v not in touched
        ]
        # Sampled untouched vertices read zero (their edges were zeroed).
        assert untouched
        assert all(heights[v] == 0 for v in untouched[:100])

    def test_selection_correspondence(self, dual):
        dataset, plots = dual
        before_marker, after_marker = plots.select(
            ASTRONOMY_CLIQUE + ["Astrology"], label="green-triangle"
        )
        assert set(before_marker.vertices) == set(
            ASTRONOMY_CLIQUE + ["Astrology"]
        )
        located = plots.locate(["Astrology"])
        x_before, x_after = located["Astrology"]
        assert x_before >= 0 and x_after >= 0


class TestFig9To11DBLPTemplates:
    @pytest.fixture(scope="class")
    def dblp(self):
        return load("dblp")

    def test_fig9_new_form_densest_is_the_six_authors(self, dblp):
        old, new = snapshot_pair(dblp, "2003", "2004")
        detection = detect_on_snapshots(old, new, NEW_FORM)
        kappa, vertices = next(detection.densest_cliques())
        assert set(NEW_FORM_AUTHORS) <= vertices
        assert kappa + 2 >= 6

    def test_fig10_bridge_merges_the_two_groups(self, dblp):
        old, new = snapshot_pair(dblp, "2003", "2004")
        detection = detect_on_snapshots(old, new, BRIDGE)
        found = False
        for kappa, vertices in detection.densest_cliques():
            if set(BRIDGE_GROUP_STREAMS + BRIDGE_GROUP_NETWORK) <= vertices:
                found = True
                assert kappa + 2 >= 6
                break
        assert found

    def test_fig11_new_join_nine_vertex_clique(self, dblp):
        old, new = snapshot_pair(dblp, "2000", "2001")
        detection = detect_on_snapshots(old, new, NEW_JOIN)
        kappa, vertices = next(detection.densest_cliques())
        assert set(NEW_JOIN_SEED_AUTHORS + NEW_JOIN_JOINERS) <= vertices
        assert kappa + 2 == 9


class TestFig12StaticPPIBridge:
    def test_bridge_proteins_surface(self):
        dataset = load("ppi")
        labeling = labeling_from_partition(dataset.graph, dataset.vertex_groups)
        detection = detect_template_cliques(dataset.graph, labeling, BRIDGE)
        top = [
            vertices for _, vertices in zip(range(6), ())
        ]
        hits = []
        for count, (kappa, vertices) in enumerate(detection.densest_cliques()):
            if count >= 8:
                break
            hits.append((kappa, vertices))
        flattened = [v for _, vertices in hits for v in vertices]
        assert "PRE1" in flattened
        assert "GLC7" in flattened or "RNA14" in flattened

    def test_pre1_bridge_spans_both_complexes(self):
        dataset = load("ppi")
        labeling = labeling_from_partition(dataset.graph, dataset.vertex_groups)
        detection = detect_template_cliques(dataset.graph, labeling, BRIDGE)
        for kappa, vertices in detection.densest_cliques():
            if "PRE1" in vertices:
                groups = {dataset.vertex_groups[v] for v in vertices}
                assert "20S proteasome" in groups
                assert "19/22S regulator" in groups
                return
        pytest.fail("no bridge clique containing PRE1")


class TestDynamicPipelineOnDatasets:
    @pytest.mark.parametrize("name", ["synthetic", "stocks"])
    def test_one_percent_churn_matches_recompute(self, name):
        dataset = load(name)
        graph = dataset.graph
        removed = random_edge_sample(graph, 0.01, seed=3)
        added = random_non_edges(graph, len(removed), seed=4, triangle_closing=True)
        maintainer = DynamicTriangleKCore(graph)
        maintainer.apply(added=added, removed=removed)
        expected = triangle_kcore_decomposition(maintainer.graph).kappa
        assert maintainer.kappa == expected

    def test_snapshot_replay_dblp(self):
        dataset = load("dblp")
        old, new = dataset.snapshots[0], dataset.snapshots[1]
        added, removed = graph_diff(old, new)
        maintainer = DynamicTriangleKCore(old)
        for vertex in new.vertices():
            if not maintainer.graph.has_vertex(vertex):
                maintainer.add_vertex(vertex)
        maintainer.apply(added=added, removed=removed)
        expected = triangle_kcore_decomposition(new).kappa
        assert maintainer.kappa == expected


class TestCSVSimilarity:
    def test_fig6_style_similarity_on_synthetic(self):
        """CSV and Triangle K-Core density plots are nearly identical on the
        synthetic dataset (the paper's Fig 6 observation)."""
        from repro.baselines import csv_co_clique_sizes
        from repro.viz import density_plot_from_scores

        dataset = load("synthetic")
        result = triangle_kcore_decomposition(dataset.graph)
        ours = density_plot(dataset.graph, result)
        csv_scores = csv_co_clique_sizes(dataset.graph)
        theirs = density_plot_from_scores(dataset.graph, csv_scores)
        assert plot_similarity(ours, theirs) > 0.85


class TestExtendedTemplatesOnDBLP:
    """The Stable / Densifying built-ins on the evolving dataset."""

    def test_stable_cliques_are_the_persistent_groups(self):
        from repro.templates import STABLE

        dataset = load("dblp")
        old, new = snapshot_pair(dataset, "2003", "2004")
        detection = detect_on_snapshots(old, new, STABLE)
        kappa, vertices = next(detection.densest_cliques())
        # Every edge of a stable clique already existed in 2003.
        members = sorted(vertices)
        for i, u in enumerate(members):
            for v in members[i + 1 :]:
                if new.has_edge(u, v):
                    assert old.has_edge(u, v)

    def test_densifying_pattern_excludes_pure_new_form(self):
        from repro.templates import DENSIFYING
        from repro.datasets import NEW_FORM_AUTHORS

        dataset = load("dblp")
        old, new = snapshot_pair(dataset, "2003", "2004")
        detection = detect_on_snapshots(old, new, DENSIFYING)
        for kappa, vertices in detection.densest_cliques():
            assert not set(NEW_FORM_AUTHORS) <= vertices, (
                "an all-new clique must not read as densifying"
            )
            if kappa < 2:
                break


class TestGrowthStreamEvents:
    def test_timeline_over_forest_fire_growth(self):
        from repro.analysis import track_communities
        from repro.graph import SnapshotStream, growth_snapshots

        snaps = growth_snapshots(600, 4, p_forward=0.45, seed=21)
        timeline = track_communities(
            SnapshotStream(snaps), min_kappa=2, max_communities=20
        )
        summary = timeline.summary()
        # A growing graph forms new communities and grows existing ones.
        assert summary.get("form", 0) + summary.get("grow", 0) > 0
        # Pure growth cannot dissolve communities into nothing... but
        # champion turnover can drop tracked ones off the top-20 list, so
        # only assert the timeline is internally consistent.
        for transition in timeline.transitions:
            for community in transition.before:
                assert community.snapshot == transition.snapshot - 1
            for community in transition.after:
                assert community.snapshot == transition.snapshot
