"""The interactive workspace: views, shell, session replay, importers.

The three contracts pinned here (ISSUE 10 acceptance criteria):

* **view isolation** — every view-scoped analysis is bit-identical to
  running the same analysis on a materialized copy of the view's
  subgraph, across ``reference`` / ``csr`` / ``auto`` backends;
* **replay determinism** — a saved session log re-executed with
  ``shell --replay`` reproduces the original answers byte-for-byte,
  including against a freshly started live :class:`BackgroundServer`;
* **script-in / answers-out** — the shell is fully drivable from files
  and pipes (no pty), errors become deterministic ``error:`` lines, and
  with ``--stats`` the last stdout line is exactly one JSON object.
"""

import io
import json

import pytest

from repro.cli import main
from repro.engine import Engine
from repro.exceptions import PersistenceError, WorkspaceError
from repro.graph import (
    Graph,
    configuration_model,
    kronecker,
    read_adjacency_csv,
    write_edge_list,
)
from repro.testing.editscript import EditOp
from repro.testing.workloads import PROFILES, generate
from repro.workspace import (
    SESSION_SCHEMA,
    SessionLog,
    ShellContext,
    Workspace,
    execute,
)
from repro.workspace.shell import replay_session, run_lines


def karate() -> Graph:
    from repro.datasets import load

    return load("karate").graph


# --------------------------------------------------------------------- #
# generators (satellite)
# --------------------------------------------------------------------- #


class TestKronecker:
    def test_deterministic_per_seed(self):
        initiator = [[0.9, 0.5], [0.5, 0.3]]
        a = kronecker(initiator, 4, seed=3)
        b = kronecker(initiator, 4, seed=3)
        assert sorted(a.edges()) == sorted(b.edges())
        assert sorted(kronecker(initiator, 4, seed=4).edges()) != sorted(
            a.edges()
        )

    def test_vertex_space_is_k_to_the_iterations(self):
        g = kronecker([[0.9, 0.5], [0.5, 0.3]], 4, seed=1)
        assert g.num_vertices == 16
        assert all(0 <= v < 16 for v in g.vertices())

    def test_simple_graph_no_self_loops(self):
        g = kronecker([[0.95, 0.6], [0.6, 0.4]], 5, seed=0)
        assert all(u != v for u, v in g.edges())

    @pytest.mark.parametrize(
        "initiator, iterations",
        [
            ([[0.9]], 2),                      # 1x1 initiator
            ([[0.9, 0.5]], 2),                 # not square
            ([[0.9, 0.5], [0.5, -0.1]], 2),    # negative cell
            ([[0.0, 0.0], [0.0, 0.0]], 2),     # no positive cell
            ([[0.9, 0.5], [0.5, 0.3]], 0),     # iterations < 1
        ],
    )
    def test_rejects_bad_arguments(self, initiator, iterations):
        with pytest.raises(ValueError):
            kronecker(initiator, iterations)


class TestConfigurationModel:
    def test_deterministic_per_seed(self):
        degrees = [4, 3, 3, 2, 2, 2, 2, 2]
        a = configuration_model(degrees, seed=7)
        b = configuration_model(degrees, seed=7)
        assert sorted(a.edges()) == sorted(b.edges())

    def test_every_listed_vertex_exists(self):
        g = configuration_model([3, 3, 2, 2, 2, 2], seed=0)
        assert g.num_vertices == 6

    def test_erased_convention_simple_graph(self):
        g = configuration_model([6] * 8, seed=1)
        assert all(u != v for u, v in g.edges())
        assert len(set(g.edges())) == g.num_edges

    def test_rejects_odd_degree_sum_and_negative(self):
        with pytest.raises(ValueError):
            configuration_model([1, 2])
        with pytest.raises(ValueError):
            configuration_model([2, -1, 1])


# --------------------------------------------------------------------- #
# CSV adjacency import (satellite)
# --------------------------------------------------------------------- #


def _write(tmp_path, text: str) -> str:
    path = tmp_path / "m.csv"
    path.write_text(text)
    return str(path)


class TestAdjacencyCsv:
    def test_basic_matrix(self, tmp_path):
        g = read_adjacency_csv(
            _write(tmp_path, ",a,b,c\na,0,1,1\nb,1,0,\nc,1,,0\n")
        )
        assert sorted(g.vertices()) == ["a", "b", "c"]
        assert sorted(g.edges()) == [("a", "b"), ("a", "c")]

    def test_isolated_vertices_preserved(self, tmp_path):
        g = read_adjacency_csv(
            _write(tmp_path, ",1,2,3\n1,0,1,0\n2,1,0,0\n3,0,0,0\n")
        )
        assert g.num_vertices == 3
        assert g.has_vertex(3)
        assert g.num_edges == 1

    def test_integer_ids_and_weighted_cells(self, tmp_path):
        g = read_adjacency_csv(
            _write(tmp_path, ",1,2\n1,0,0.5\n2,0.5,0\n")
        )
        assert g.has_edge(1, 2)

    @pytest.mark.parametrize(
        "text, fragment",
        [
            ("", "empty adjacency matrix"),
            (",a,b\na,0,1\n", "expected 2 data rows"),
            (",a,b\na,0,1,9\nb,1,0\n", "ragged row 1"),
            (",a,a\na,0,1\na,1,0\n", "duplicate node id"),
            (",a,b\nb,0,1\na,1,0\n", "labelled"),
            (",a,b\na,1,0\nb,0,0\n", "self loop"),
            (",a,b\na,0,1\nb,0,0\n", "asymmetric cell"),
        ],
    )
    def test_faults_raise_typed_persistence_error(
        self, tmp_path, text, fragment
    ):
        path = _write(tmp_path, text)
        with pytest.raises(PersistenceError) as excinfo:
            read_adjacency_csv(path)
        assert fragment in str(excinfo.value)
        assert excinfo.value.path == path


# --------------------------------------------------------------------- #
# workload profiles (satellite)
# --------------------------------------------------------------------- #


class TestNewProfiles:
    @pytest.mark.parametrize("name", ["heavy_tail", "self_similar"])
    def test_registered_deterministic_exact_length(self, name):
        assert name in PROFILES
        for seed in (0, 1, 2):
            a = generate(name, seed, 150)
            b = generate(name, seed, 150)
            assert [(o.kind, o.u, o.v) for o in a.ops] == [
                (o.kind, o.u, o.v) for o in b.ops
            ]
            assert len(a.ops) == 150

    def test_fuzz_cli_choices_derive_from_profiles(self, capsys):
        with pytest.raises(SystemExit):
            main(["fuzz", "--profile", "not_a_profile"])
        err = capsys.readouterr().err
        for name in sorted(PROFILES):
            assert name in err

    def test_generate_unknown_profile_names_all(self):
        with pytest.raises(ValueError) as excinfo:
            generate("nope", 0, 10)
        for name in sorted(PROFILES):
            assert name in str(excinfo.value)


# --------------------------------------------------------------------- #
# workspace semantics
# --------------------------------------------------------------------- #


class TestWorkspace:
    def test_names_are_unique_across_graphs_and_views(self):
        ws = Workspace()
        ws.add_graph("g", karate())
        with pytest.raises(WorkspaceError):
            ws.add_graph("g", Graph())
        ws.create_view("hot", "slice", "g", {"k": 2})
        with pytest.raises(WorkspaceError):
            ws.add_graph("hot", Graph())
        with pytest.raises(WorkspaceError):
            ws.create_view("g", "slice", "g", {"k": 1})
        with pytest.raises(WorkspaceError):
            ws.add_graph("0bad name", Graph())

    def test_edit_through_maintainer_invalidates_dependent_views(self):
        ws = Workspace()
        ws.add_graph("g", karate())
        view = ws.create_view("hot", "slice", "g", {"k": 2})
        assert not view.stale
        applied, skipped, _ = ws.edit(
            "g", [EditOp("add", 0, 9), EditOp("add", 0, 9)]
        )
        assert (applied, skipped) == (1, 1)
        assert view.stale
        # lazily re-derived on next use
        subgraph = ws.view_subgraph("hot")
        assert not view.stale
        assert subgraph.num_vertices == len(view.vertices)

    def test_vertices_view_intersects_after_vertex_removal(self):
        ws = Workspace()
        g = Graph(edges=[(0, 1), (1, 2), (0, 2), (2, 3)])
        ws.add_graph("g", g)
        view = ws.create_view(
            "picked", "vertices", "g", {"vertices": (0, 1, 3, 99)}
        )
        assert view.vertices == (0, 1, 3)  # 99 never existed
        ws.edit("g", [EditOp("remove_vertex", 3, None)])
        assert ws.view_subgraph("picked").num_vertices == 2

    def test_drop_graph_cascades_to_views(self):
        ws = Workspace()
        ws.add_graph("g", karate())
        ws.create_view("a", "slice", "g", {"k": 1})
        ws.create_view("b", "vertices", "g", {"vertices": (0, 1)})
        kind, dependents = ws.drop("g")
        assert (kind, dependents) == ("graph", 2)
        assert not ws.views and not ws.graphs

    def test_materialized_subgraph_cached_per_version(self):
        ws = Workspace()
        ws.add_graph("g", karate())
        ws.create_view("hot", "slice", "g", {"k": 2})
        first = ws.view_subgraph("hot")
        assert ws.view_subgraph("hot") is first  # same object -> cache hits
        ws.edit("g", [EditOp("add", 0, 9)])
        assert ws.view_subgraph("hot") is not first

    def test_engine_cache_reused_across_repeat_view_analyses(self):
        engine = Engine()
        ws = Workspace(engine=engine)
        ws.add_graph("g", karate())
        ws.create_view("hot", "slice", "g", {"k": 2})
        ws.decompose("hot")
        hits_before = engine.stats.cache_hits
        ws.decompose("hot")
        assert engine.stats.cache_hits > hits_before

    def test_workspace_stats_section(self):
        engine = Engine()
        ws = Workspace(engine=engine)
        ws.add_graph("g", karate())
        ws.create_view("hot", "slice", "g", {"k": 2})
        ws.decompose("hot")
        ws.edit("g", [EditOp("add", 0, 9)])
        section = engine.stats_dict()["workspace"]
        assert section["graphs"] == 1
        assert section["views"] == 1
        assert section["views_created"] == 1
        assert section["view_invalidations"] == 1
        assert section["materializations"] == 1


# --------------------------------------------------------------------- #
# view isolation: bit-identity vs a materialized copy
# --------------------------------------------------------------------- #


VIEW_RECIPES = [
    ("slice", {"k": 2}),
    ("community", {"vertex": 0}),
    ("vertices", {"vertices": tuple(range(12))}),
]


class TestViewIsolation:
    @pytest.mark.parametrize("backend", ["reference", "csr", "auto"])
    @pytest.mark.parametrize(
        "kind, params", VIEW_RECIPES, ids=[k for k, _ in VIEW_RECIPES]
    )
    def test_view_scoped_decompose_bit_identical(
        self, backend, kind, params
    ):
        ws = Workspace(engine=Engine(), backend=backend)
        ws.add_graph("g", karate())
        view = ws.create_view("v", kind, "g", params)
        scoped = ws.decompose("v")

        # Independent path: materialize a *copy* of the induced subgraph
        # and analyze it with a fresh engine.
        copy = karate().subgraph(view.vertices).copy()
        control = Engine().decompose(copy, backend=backend)

        assert scoped.kappa == control.kappa
        assert scoped.max_kappa == control.max_kappa
        assert scoped.histogram() == control.histogram()

    @pytest.mark.parametrize("backend", ["reference", "csr", "auto"])
    def test_view_scoped_communities_and_maxcore_bit_identical(
        self, backend
    ):
        from repro.core import CommunityIndex, max_triangle_kcore

        ws = Workspace(engine=Engine(), backend=backend)
        ws.add_graph("g", karate())
        ws.create_view("hot", "slice", "g", {"k": 1})
        subgraph = ws.view_subgraph("hot")
        scoped_index = CommunityIndex(
            subgraph, backend=backend, engine=ws.engine
        )
        copy = karate().subgraph(ws.views["hot"].vertices).copy()
        control_index = CommunityIndex(copy, backend=backend)
        probe = sorted(subgraph.vertices(), key=repr)[0]
        assert scoped_index.densest_community_of_vertex(
            probe
        ) == control_index.densest_community_of_vertex(probe)
        assert max_triangle_kcore(subgraph)[0] == max_triangle_kcore(copy)[0]

    def test_view_scoped_analysis_after_edit_tracks_live_graph(self):
        ws = Workspace()
        ws.add_graph("g", karate())
        ws.create_view("all", "vertices", "g",
                       {"vertices": tuple(range(34))})
        before = ws.decompose("all").max_kappa
        # densify vertex 9's neighborhood so kappa actually moves
        for u, v in [(9, 0), (9, 1), (9, 2), (9, 7), (9, 13)]:
            ws.edit("g", [EditOp("add", u, v)])
        after = ws.decompose("all")
        control = Engine().decompose(ws.graphs["g"])
        assert after.kappa == control.kappa
        assert after.max_kappa >= before


# --------------------------------------------------------------------- #
# session log + replay
# --------------------------------------------------------------------- #


SCRIPT = """
load g karate
view slice hot g 2
run decompose hot
run maxcore hot
edit g add 0 9
refresh hot
run decompose hot
run hierarchy hot
views
"""


def _run_session(lines, connect_override=None):
    ctx = ShellContext(
        workspace=Workspace(engine=Engine()),
        connect_override=connect_override,
    )
    out = io.StringIO()
    run_lines(ctx, lines.splitlines() if isinstance(lines, str) else lines,
              out=out)
    return ctx, out.getvalue()


class TestSessionLog:
    def test_save_load_round_trip(self, tmp_path):
        ctx, _ = _run_session(SCRIPT)
        path = tmp_path / "s.json"
        SessionLog(entries=list(ctx.log)).save(path)
        loaded = SessionLog.load(path)
        assert loaded.entries == ctx.log
        payload = json.loads(path.read_text())
        assert payload["format"] == SESSION_SCHEMA

    @pytest.mark.parametrize(
        "payload, fragment",
        [
            ("not json {", "invalid JSON"),
            ("[]", "must be a JSON object"),
            ('{"format": "other/9", "commands": []}',
             "unsupported session format"),
            ('{"format": "repro.workspace-session/1", "commands": 3}',
             "'commands' must be a list"),
            ('{"format": "repro.workspace-session/1", '
             '"commands": [{"line": 5, "output": []}]}',
             "commands[0]"),
        ],
    )
    def test_malformed_logs_raise_persistence_error(
        self, tmp_path, payload, fragment
    ):
        path = tmp_path / "bad.json"
        path.write_text(payload)
        with pytest.raises(PersistenceError) as excinfo:
            SessionLog.load(path)
        assert fragment in str(excinfo.value)

    def test_missing_file_raises_persistence_error(self, tmp_path):
        with pytest.raises(PersistenceError):
            SessionLog.load(tmp_path / "absent.json")


class TestReplayDeterminism:
    def test_replay_reproduces_answers_byte_for_byte(self, tmp_path):
        ctx, original = _run_session(SCRIPT)
        path = tmp_path / "s.json"
        SessionLog(entries=list(ctx.log)).save(path)

        ctx2 = ShellContext(workspace=Workspace(engine=Engine()))
        out, err = io.StringIO(), io.StringIO()
        assert replay_session(ctx2, str(path), out=out, err=err) == 0
        assert out.getvalue() == original
        assert err.getvalue() == ""
        # re-saving the replayed session reproduces the file bytes too
        again = tmp_path / "s2.json"
        SessionLog(entries=list(ctx2.log)).save(again)
        assert again.read_text() == path.read_text()

    def test_replay_detects_tampered_output(self, tmp_path):
        ctx, _ = _run_session("load g karate\ngraphs\n")
        path = tmp_path / "s.json"
        log = SessionLog(entries=list(ctx.log))
        log.entries[1]["output"] = ["g: |V|=9999 |E|=9999"]
        log.save(path)
        ctx2 = ShellContext(workspace=Workspace(engine=Engine()))
        out, err = io.StringIO(), io.StringIO()
        assert replay_session(ctx2, str(path), out=out, err=err) == 1
        assert "replay mismatch at command 1" in err.getvalue()

    def test_replay_against_live_background_server(self, tmp_path):
        from repro.service.server import BackgroundServer

        with BackgroundServer(karate()) as server:
            ctx, original = _run_session(
                [
                    f"connect 127.0.0.1 {server.port}",
                    "remote kappa 0 1",
                    "remote community 0",
                    "remote hierarchy",
                    "remote edit add 0 9",
                    "remote kappa 0 9",
                    "disconnect",
                ]
            )
        path = tmp_path / "remote.json"
        SessionLog(entries=list(ctx.log)).save(path)

        # Fresh server, (almost certainly) different port: the recorded
        # lines are replayed verbatim; --connect overrides the target.
        with BackgroundServer(karate()) as fresh:
            ctx2 = ShellContext(
                workspace=Workspace(engine=Engine()),
                connect_override=("127.0.0.1", fresh.port),
            )
            out, err = io.StringIO(), io.StringIO()
            assert replay_session(ctx2, str(path), out=out, err=err) == 0
        assert out.getvalue() == original

    def test_remote_commands_require_connection(self):
        _, output = _run_session("remote kappa 0 1\n")
        assert output.startswith("error: not connected")


# --------------------------------------------------------------------- #
# the shell subcommand (script-driven, no pty)
# --------------------------------------------------------------------- #


class TestShellCli:
    def test_script_mode(self, tmp_path, capsys):
        script = tmp_path / "script.txt"
        script.write_text("load g karate\nrun decompose g\nexit\n")
        assert main(["shell", "--script", str(script)]) == 0
        out = capsys.readouterr().out
        assert "graph g: |V|=34 |E|=78" in out
        assert "max_kappa=3" in out

    def test_save_then_replay_via_cli(self, tmp_path, capsys):
        script = tmp_path / "script.txt"
        script.write_text(SCRIPT)
        session = tmp_path / "session.json"
        assert main(
            ["shell", "--script", str(script), "--save", str(session)]
        ) == 0
        original = capsys.readouterr().out
        assert main(["shell", "--replay", str(session)]) == 0
        assert capsys.readouterr().out == original

    def test_replay_mismatch_exits_one(self, tmp_path, capsys):
        session = tmp_path / "session.json"
        log = SessionLog()
        log.record("load g karate", ["graph g: |V|=1 |E|=1"])
        log.save(session)
        assert main(["shell", "--replay", str(session)]) == 1
        captured = capsys.readouterr()
        assert "replay mismatch" in captured.err

    def test_errors_are_lines_not_crashes(self, tmp_path, capsys):
        script = tmp_path / "script.txt"
        script.write_text(
            "bogus\nload g karate\nload g karate\nrun decompose nope\n"
            "graphs\n"
        )
        assert main(["shell", "--script", str(script)]) == 0
        out = capsys.readouterr().out
        assert "error: unknown command 'bogus'" in out
        assert "error: name 'g' is already a graph" in out
        assert "error: no graph or view named 'nope'" in out
        assert "g: |V|=34 |E|=78" in out

    def test_checked_in_session_replays(self, capsys):
        from pathlib import Path

        session = (
            Path(__file__).resolve().parent.parent
            / "examples"
            / "workspace-session.json"
        )
        assert main(["shell", "--replay", str(session)]) == 0

    def test_import_and_generate_commands(self, tmp_path, capsys):
        csv = tmp_path / "m.csv"
        csv.write_text(",a,b,c\na,0,1,1\nb,1,0,1\nc,1,1,0\n")
        script = tmp_path / "script.txt"
        script.write_text(
            f"import m {csv}\n"
            "generate e erdos_renyi 20 0.3 1\n"
            "generate kr kronecker 4 1\n"
            "generate cm configuration_model 10 2\n"
            "graphs\n"
        )
        assert main(["shell", "--script", str(script)]) == 0
        out = capsys.readouterr().out
        assert "graph m: |V|=3 |E|=3" in out
        assert "graph kr: |V|=16" in out

    def test_edge_list_files_load(self, tmp_path, capsys):
        path = tmp_path / "g.edges"
        write_edge_list(Graph(edges=[(0, 1), (1, 2), (0, 2)]), path)
        script = tmp_path / "script.txt"
        script.write_text(f"load g {path}\nrun decompose g\n")
        assert main(["shell", "--script", str(script)]) == 0
        assert "max_kappa=1" in capsys.readouterr().out
