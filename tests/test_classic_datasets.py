"""Real-data anchor tests: Zachary karate, Les Miserables, Davis women.

These are genuine datasets (bundled with networkx), so the assertions pin
the library against ground truth nothing in this repository generated.
"""

import pytest

from repro.baselines import networkx_kappa, tridn
from repro.core import (
    CommunityIndex,
    DynamicTriangleKCore,
    max_triangle_kcore,
    triangle_kcore_decomposition,
)
from repro.datasets import load


@pytest.fixture(scope="module")
def karate():
    return load("karate")


@pytest.fixture(scope="module")
def lesmis():
    return load("lesmis")


@pytest.fixture(scope="module")
def davis():
    return load("davis")


class TestKarate:
    def test_size(self, karate):
        assert karate.num_vertices == 34
        assert karate.num_edges == 78

    def test_max_kappa_is_three(self, karate):
        """The karate club's densest motif is a 5-clique (kappa 3) around
        the two leaders' inner circles."""
        result = triangle_kcore_decomposition(karate.graph)
        assert result.max_kappa == 3

    def test_leaders_in_densest_communities(self, karate):
        index = CommunityIndex(karate.graph)
        level, members = index.densest_community_of_vertex(0)  # Mr. Hi
        assert level == 3
        assert 0 in members

    def test_matches_networkx_truss(self, karate):
        assert networkx_kappa(karate.graph) == (
            triangle_kcore_decomposition(karate.graph).kappa
        )

    def test_dynamic_roundtrip(self, karate):
        maintainer = DynamicTriangleKCore(karate.graph)
        maintainer.remove_edge(0, 1)
        maintainer.add_edge(0, 1)
        assert maintainer.kappa == (
            triangle_kcore_decomposition(karate.graph).kappa
        )

    def test_faction_labels_present(self, karate):
        assert set(karate.vertex_groups.values()) == {"Mr. Hi", "Officer"}


class TestLesMis:
    def test_size(self, lesmis):
        assert lesmis.num_vertices == 77
        assert lesmis.num_edges == 254

    def test_dense_ensemble_cast(self, lesmis):
        """The barricade ensemble (Les Amis de l'ABC plus Marius, Gavroche
        and Mabeuf) forms the densest structure: a 12-vertex region at
        kappa 8, i.e. approximately a 10-clique."""
        k, sub = max_triangle_kcore(lesmis.graph)
        assert k == 8
        members = set(sub.vertices())
        assert {"Enjolras", "Courfeyrac", "Combeferre", "Marius",
                "Gavroche"} <= members
        assert sub.num_vertices == 12

    def test_tridn_agrees(self, lesmis):
        kappa = triangle_kcore_decomposition(lesmis.graph).kappa
        assert tridn(lesmis.graph).lambda_ == kappa


class TestDavisTriangleFree:
    def test_bipartite_means_zero_kappa(self, davis):
        result = triangle_kcore_decomposition(davis.graph)
        assert set(result.kappa.values()) == {0}
        assert result.max_kappa == 0

    def test_flat_density_plot(self, davis):
        from repro.viz import density_plot

        result = triangle_kcore_decomposition(davis.graph)
        plot = density_plot(davis.graph, result)
        assert plot.max_height == 2  # bare edges only

    def test_dynamic_updates_on_triangle_free_graph(self, davis):
        maintainer = DynamicTriangleKCore(davis.graph)
        edges = sorted(davis.graph.edges(), key=repr)[:5]
        for u, v in edges:
            maintainer.remove_edge(u, v)
        for u, v in edges:
            maintainer.add_edge(u, v)
        assert maintainer.kappa == (
            triangle_kcore_decomposition(davis.graph).kappa
        )
