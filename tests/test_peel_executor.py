"""The peel-executor seam (repro.fast.peelers): scalar vs vector.

The vectorized level-synchronous executor is an entirely different walk
of Algorithm 1 than the scalar bucket-queue — batched decrements against
pre-sub-round bounds instead of one decrement at a time — so this file
pins the contracts the conformance matrix relies on:

* kappa bit-identity with the scalar executor (fixed zoo + hypothesis);
* the vector order contract: deterministic, non-decreasing in kappa,
  identical between the numpy and pure-python code paths (including the
  telemetry counters, so a numpy-less CI leg measures the same algorithm);
* PeelStats telemetry (levels / batched_decrements / bound_skips) wired
  through ``peel`` and the engine's ``csr-vec``/``parallel-vec`` backends;
* input validation of the raw ``run_peel`` entry point.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.engine import Engine
from repro.fast import (
    CSRGraph,
    PEEL_EXECUTORS,
    backend_executor,
    csr_decomposition,
    parallel_decomposition,
    run_peel,
    supports_and_triangles,
)
from repro.fast import csr as csr_mod
from repro.fast import peelers as peelers_mod
from repro.graph import Graph, complete_graph, erdos_renyi


def zoo() -> dict:
    return {
        "fig2": Graph(
            edges=[
                ("A", "B"), ("A", "C"), ("B", "C"), ("B", "D"),
                ("B", "E"), ("C", "D"), ("C", "E"), ("D", "E"),
            ]
        ),
        "k6": complete_graph(6),
        "empty": Graph(),
        "single_edge": Graph(edges=[(0, 1)]),
        "triangle_free_star": Graph(edges=[(0, i) for i in range(1, 15)]),
        "er_small": erdos_renyi(30, 0.2, seed=0),
        "er_medium": erdos_renyi(80, 0.1, seed=1),
        "er_dense": erdos_renyi(40, 0.4, seed=2),
    }


ZOO_NAMES = tuple(zoo())


def peel_pair(graph: Graph, executor: str, stats: dict | None = None):
    csr = CSRGraph.from_graph(graph)
    pre = supports_and_triangles(csr)
    return run_peel(
        csr.num_edges, pre[0], pre[1], executor=executor, stats=stats
    )


# ------------------------------------------------------------------ #
# kappa identity
# ------------------------------------------------------------------ #


class TestKappaIdentity:
    @pytest.mark.parametrize("name", ZOO_NAMES)
    def test_vector_kappa_equals_scalar(self, name):
        graph = zoo()[name]
        scalar_kappa, _ = peel_pair(graph, "scalar")
        vector_kappa, _ = peel_pair(graph, "vector")
        assert vector_kappa == scalar_kappa

    @pytest.mark.parametrize("name", ZOO_NAMES)
    def test_vector_order_deterministic_and_sorted(self, name):
        graph = zoo()[name]
        kappa, order = peel_pair(graph, "vector")
        kappa2, order2 = peel_pair(graph, "vector")
        assert (kappa, order) == (kappa2, order2)
        assert sorted(order) == list(range(len(kappa)))
        assert [kappa[e] for e in order] == sorted(kappa)


@st.composite
def graphs(draw, max_vertices: int = 14) -> Graph:
    n = draw(st.integers(min_value=2, max_value=max_vertices))
    possible = [(u, v) for u in range(n) for v in range(u + 1, n)]
    edges = draw(
        st.lists(st.sampled_from(possible), unique=True, max_size=len(possible))
    )
    return Graph(edges=edges, vertices=range(n))


@settings(max_examples=100, deadline=None)
@given(graphs())
def test_vector_matches_scalar_on_random_graphs(graph):
    scalar_kappa, _ = peel_pair(graph, "scalar")
    vector_kappa, order = peel_pair(graph, "vector")
    assert vector_kappa == scalar_kappa
    assert [vector_kappa[e] for e in order] == sorted(vector_kappa)


# ------------------------------------------------------------------ #
# numpy / pure bit-identity
# ------------------------------------------------------------------ #


class TestNumpyPureIdentity:
    @pytest.mark.skipif(csr_mod.np is None, reason="needs numpy installed")
    @pytest.mark.parametrize("name", ZOO_NAMES)
    def test_pure_path_bit_identical_including_stats(self, name, monkeypatch):
        graph = zoo()[name]
        numpy_stats: dict = {}
        numpy_out = peel_pair(graph, "vector", numpy_stats)
        monkeypatch.setattr(csr_mod, "np", None)
        pure_stats: dict = {}
        pure_out = peel_pair(graph, "vector", pure_stats)
        assert pure_out == numpy_out
        assert pure_stats == numpy_stats

    @settings(max_examples=50, deadline=None)
    @given(graphs())
    def test_pure_path_bit_identical_on_random_graphs(self, graph):
        if csr_mod.np is None:
            return  # only one path exists; nothing to compare
        numpy_stats: dict = {}
        numpy_out = peel_pair(graph, "vector", numpy_stats)
        saved = csr_mod.np
        csr_mod.np = None
        try:
            pure_stats: dict = {}
            pure_out = peel_pair(graph, "vector", pure_stats)
        finally:
            csr_mod.np = saved
        assert pure_out == numpy_out
        assert pure_stats == numpy_stats


# ------------------------------------------------------------------ #
# telemetry
# ------------------------------------------------------------------ #


class TestPeelStats:
    def test_scalar_stats_shape(self):
        stats: dict = {}
        peel_pair(complete_graph(6), "scalar", stats)
        assert stats["executor"] == "scalar"
        assert stats["levels"] >= 1
        assert stats["batched_decrements"] == 0
        assert stats["bound_skips"] == 0

    def test_vector_stats_counters_move(self):
        stats: dict = {}
        peel_pair(erdos_renyi(40, 0.3, seed=3), "vector", stats)
        assert stats["executor"] == "vector"
        assert stats["levels"] >= 1
        assert stats["batched_decrements"] > 0
        assert stats["bound_skips"] >= 0

    def test_empty_graph_zeroes_stats(self):
        stats: dict = {}
        kappa, order = peel_pair(Graph(), "vector", stats)
        assert kappa == [] and order == []
        assert stats["levels"] == 0
        assert stats["batched_decrements"] == 0

    @pytest.mark.parametrize("backend", ["csr-vec", "parallel-vec"])
    def test_engine_records_peel_section(self, backend):
        engine = Engine(workers=2, max_cached_graphs=0)
        engine.decompose(erdos_renyi(40, 0.2, seed=4), backend=backend)
        payload = engine.stats_dict()
        assert payload["backend_calls"][backend] == 1
        section = payload["peel"]
        assert section["executor"] == "vector"
        assert section["runs"] == 1
        assert section["levels"] >= 1

    def test_engine_scalar_backends_record_scalar_executor(self):
        engine = Engine(max_cached_graphs=0)
        engine.decompose(complete_graph(6), backend="csr")
        assert engine.stats_dict()["peel"]["executor"] == "scalar"


# ------------------------------------------------------------------ #
# composition: parallel-vec == csr-vec
# ------------------------------------------------------------------ #


class TestComposition:
    def test_backend_executor_mapping(self):
        assert backend_executor("csr") == "scalar"
        assert backend_executor("parallel") == "scalar"
        assert backend_executor("csr-vec") == "vector"
        assert backend_executor("parallel-vec") == "vector"

    @pytest.mark.parametrize("workers", [2, 3, 7])
    def test_parallel_vec_order_identical_to_csr_vec(self, workers):
        graph = erdos_renyi(60, 0.15, seed=5)
        expected = csr_decomposition(graph, executor="vector")
        result = parallel_decomposition(
            graph, workers=workers, inprocess=True, executor="vector"
        )
        assert result.kappa == expected.kappa
        assert result.processing_order == expected.processing_order


# ------------------------------------------------------------------ #
# validation
# ------------------------------------------------------------------ #


class TestValidation:
    def test_executor_registry(self):
        assert PEEL_EXECUTORS == ("scalar", "vector")
        assert set(PEEL_EXECUTORS) == set(peelers_mod._EXECUTORS)

    def test_unknown_executor_rejected(self):
        with pytest.raises(ValueError, match="unknown peel executor"):
            run_peel(0, [], [], executor="warp")

    def test_inconsistent_input_rejected(self):
        # supports say one triangle-incidence, tri_edges says none.
        with pytest.raises(ValueError, match="supports/triangles disagree"):
            run_peel(1, [3], [], executor="scalar")

    def test_kernel_level_executor_threading(self):
        # peel() forwards executor= and stats= to run_peel.
        from repro.fast.kernels import peel

        csr = CSRGraph.from_graph(complete_graph(5))
        stats: dict = {}
        kappa, order = peel(csr, executor="vector", stats=stats)
        assert stats["executor"] == "vector"
        scalar_kappa, _ = peel(csr)
        assert kappa == scalar_kappa
