"""The paper's worked examples, asserted exactly.

* Figure 1 — K-Core vs Triangle K-Core on minimal 5-vertex examples.
* Figure 2 — Algorithm 1 walk-through (initial bounds, processing order
  constraints, final kappa values).
* Figure 3 — the dynamic update example (adding edge AC).
* Figure 5 — the DN-Graph comparison graph (vertex A is covered by a
  Triangle K-Core even though no DN-Graph covers it).
* Section III — "an n-vertex clique is an n-vertex Triangle K-Core with
  number n-2".
* Claim 3 — kappa(e) equals the converged valid lambda(e).
"""

import pytest

from repro.baselines import bitridn, is_valid_lambda, tridn
from repro.core import (
    DynamicTriangleKCore,
    kappa_upper_bounds,
    kcore_decomposition,
    triangle_kcore_decomposition,
)
from repro.graph import Graph, complete_graph


class TestFigure1:
    """K-Core is a weak clique proxy; Triangle K-Core is much tighter."""

    def test_minimal_2core_is_a_cycle_with_no_triangles(self):
        cycle = Graph(edges=[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)])
        core = kcore_decomposition(cycle)
        assert all(value == 2 for value in core.values())
        tkc = triangle_kcore_decomposition(cycle)
        assert all(value == 0 for value in tkc.kappa.values())

    def test_minimal_triangle_2core_is_nearly_a_clique(self):
        """5 vertices, every edge in >= 2 triangles, fewer edges than K5.

        The octahedron-like K5-minus-one-edge works: 9 edges (vs 10 for K5)
        and every edge sits in at least 2 triangles.
        """
        g = complete_graph(5)
        g.remove_edge(0, 1)
        tkc = triangle_kcore_decomposition(g)
        assert all(value == 2 for value in tkc.kappa.values())
        # Edge count strictly between the 2-core minimum (5) and K5 (10).
        assert g.num_edges == 9


class TestFigure2:
    """The Algorithm 1 walk-through graph."""

    def test_initial_bounds(self, fig2_graph):
        bounds = kappa_upper_bounds(fig2_graph)
        expected = {
            ("A", "B"): 1,
            ("A", "C"): 1,
            ("B", "D"): 2,
            ("B", "E"): 2,
            ("C", "D"): 2,
            ("C", "E"): 2,
            ("D", "E"): 2,
            ("B", "C"): 3,
        }
        assert bounds == expected

    def test_final_kappa(self, fig2_graph):
        result = triangle_kcore_decomposition(fig2_graph)
        assert result.kappa_of("A", "B") == 1
        assert result.kappa_of("A", "C") == 1
        for edge in (("B", "C"), ("B", "D"), ("B", "E"), ("C", "D"),
                     ("C", "E"), ("D", "E")):
            assert result.kappa_of(*edge) == 2, edge

    def test_level1_edges_processed_before_level2(self, fig2_graph):
        result = triangle_kcore_decomposition(fig2_graph)
        positions = {edge: i for i, edge in enumerate(result.processing_order)}
        level1 = max(positions[("A", "B")], positions[("A", "C")])
        level2 = min(
            positions[edge]
            for edge in positions
            if result.kappa[edge] == 2
        )
        assert level1 < level2


class TestFigure3:
    """Dynamic update example: adding edge AC."""

    def test_original_kappa(self, fig3_original_graph):
        result = triangle_kcore_decomposition(fig3_original_graph)
        expected = {
            ("A", "B"): 0,
            ("B", "C"): 0,
            ("A", "E"): 1,
            ("A", "F"): 1,
            ("E", "F"): 1,
            ("C", "D"): 1,
            ("C", "E"): 1,
            ("D", "E"): 1,
        }
        assert result.kappa == expected

    def test_after_adding_ac(self, fig3_original_graph):
        """Paper outcome: every edge ends at kappa 1 (AB and BC rise to 1;
        AC settles at 1 after the AEC triangle processing)."""
        maintainer = DynamicTriangleKCore(fig3_original_graph)
        maintainer.add_edge("A", "C")
        assert maintainer.kappa_of("A", "C") == 1
        assert maintainer.kappa_of("A", "B") == 1
        assert maintainer.kappa_of("B", "C") == 1
        assert maintainer.kappa_of("A", "E") == 1
        assert maintainer.kappa_of("C", "E") == 1
        # And the whole state matches a fresh Algorithm 1 run.
        fresh = triangle_kcore_decomposition(maintainer.graph).kappa
        assert maintainer.kappa == fresh


class TestFigure5:
    """DN-Graph coverage gap: Triangle K-Cores cover every vertex."""

    @pytest.fixture
    def fig5_graph(self):
        """BCDE is a dense module; A attaches to B and C only."""
        g = complete_graph(0)
        for u, v in [("B", "C"), ("B", "D"), ("B", "E"), ("C", "D"),
                     ("C", "E"), ("D", "E"), ("A", "B"), ("A", "C")]:
            g.add_edge(u, v)
        return g

    def test_every_edge_has_a_kappa(self, fig5_graph):
        result = triangle_kcore_decomposition(fig5_graph)
        assert set(result.kappa) == set(fig5_graph.edges())
        # A's edges live in the ABC triangle: kappa 1.
        assert result.kappa_of("A", "B") == 1
        assert result.kappa_of("A", "C") == 1
        # The BCDE K4 keeps kappa 2.
        assert result.kappa_of("D", "E") == 2

    def test_vertex_a_is_covered(self, fig5_graph):
        result = triangle_kcore_decomposition(fig5_graph)
        assert result.vertex_kappa()["A"] == 1


class TestSectionIII:
    def test_clique_equivalence(self):
        """n-vertex clique == n-vertex Triangle K-Core with number n-2."""
        for n in range(3, 9):
            result = triangle_kcore_decomposition(complete_graph(n))
            assert set(result.kappa.values()) == {n - 2}

    def test_theorem1_on_fig2(self, fig2_graph):
        """Every triangle in an edge's max core has side kappas >= kappa."""
        result = triangle_kcore_decomposition(fig2_graph, store_membership=True)
        from repro.graph.edge import triangle_edges

        for edge, kappa in result.kappa.items():
            for triangle in result.membership.triangles_of(edge):
                for other in triangle_edges(triangle):
                    assert result.kappa[other] >= kappa


class TestClaim3:
    """kappa(e) == valid lambda(e): DN-Graph estimators converge to kappa."""

    def test_fig2(self, fig2_graph):
        kappa = triangle_kcore_decomposition(fig2_graph).kappa
        assert tridn(fig2_graph).lambda_ == kappa
        assert bitridn(fig2_graph).lambda_ == kappa
        assert is_valid_lambda(fig2_graph, kappa)

    def test_kappa_is_always_valid_lambda(self):
        from repro.graph import erdos_renyi

        for seed in range(3):
            g = erdos_renyi(30, 0.3, seed=seed)
            kappa = triangle_kcore_decomposition(g).kappa
            assert is_valid_lambda(g, kappa)
