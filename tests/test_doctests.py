"""Run the doctests embedded in public-module docstrings.

The usage examples in docstrings are part of the documentation deliverable;
this keeps them honest.
"""

import doctest

import pytest

import repro.analysis.streaming
import repro.baselines.csv_baseline
import repro.core.bucket_queue
import repro.core.community
import repro.core.dynamic
import repro.core.hierarchy
import repro.core.kcore
import repro.core.local
import repro.core.maxcore
import repro.core.triangle_kcore
import repro.graph.edge
import repro.graph.triangle_store
import repro.graph.triangles
import repro.graph.undirected
import repro.viz.report

MODULES = [
    repro.analysis.streaming,
    repro.baselines.csv_baseline,
    repro.core.bucket_queue,
    repro.core.community,
    repro.core.dynamic,
    repro.core.hierarchy,
    repro.core.kcore,
    repro.core.local,
    repro.core.maxcore,
    repro.core.triangle_kcore,
    repro.graph.edge,
    repro.graph.triangle_store,
    repro.graph.triangles,
    repro.graph.undirected,
    repro.viz.report,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{results.failed} doctest failures"
    assert results.attempted > 0, f"{module.__name__} has no doctests"
