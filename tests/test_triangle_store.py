"""Tests for the dynamic triangle index."""

import random

import pytest

from repro.exceptions import EdgeNotFoundError
from repro.graph import Graph, TriangleStore, complete_graph, erdos_renyi


class TestBuild:
    def test_initial_index_matches_graph(self):
        g = erdos_renyi(30, 0.3, seed=1)
        store = TriangleStore(g)
        assert store.is_consistent()

    def test_support_and_apexes(self, k5):
        store = TriangleStore(k5)
        assert store.support(0, 1) == 3
        assert store.apexes(0, 1) == {2, 3, 4}

    def test_total_triangles(self, k5):
        assert TriangleStore(k5).total_triangles() == 10

    def test_triangles_of_edge_canonical(self, triangle_graph):
        store = TriangleStore(triangle_graph)
        assert list(store.triangles_of_edge(0, 1)) == [(0, 1, 2)]

    def test_missing_edge_raises(self, triangle_graph):
        store = TriangleStore(triangle_graph)
        with pytest.raises(EdgeNotFoundError):
            store.apexes(0, 9)


class TestUpdates:
    def test_add_edge_returns_new_apexes(self):
        g = Graph(edges=[(0, 1), (1, 2)])
        store = TriangleStore(g)
        assert store.add_edge(0, 2) == {1}
        assert store.apexes(0, 1) == {2}
        assert store.is_consistent()

    def test_add_edge_with_new_vertex(self, triangle_graph):
        store = TriangleStore(triangle_graph)
        assert store.add_edge(0, 99) == set()
        assert store.support(0, 99) == 0

    def test_remove_edge_returns_dead_apexes(self, k5):
        store = TriangleStore(k5)
        assert store.remove_edge(0, 1) == {2, 3, 4}
        assert store.is_consistent()
        assert store.support(0, 2) == 2

    def test_remove_missing_edge_raises(self, triangle_graph):
        store = TriangleStore(triangle_graph)
        with pytest.raises(EdgeNotFoundError):
            store.remove_edge(0, 9)

    def test_random_churn_stays_consistent(self):
        rng = random.Random(7)
        g = erdos_renyi(20, 0.3, seed=3)
        store = TriangleStore(g)
        vertices = sorted(g.vertices())
        for _ in range(120):
            u, v = rng.sample(vertices, 2)
            if store.graph.has_edge(u, v):
                store.remove_edge(u, v)
            else:
                store.add_edge(u, v)
        assert store.is_consistent()

    def test_shared_graph_reference(self):
        g = complete_graph(4)
        store = TriangleStore(g)
        store.remove_edge(0, 1)
        assert not g.has_edge(0, 1), "store mutates the shared graph"
