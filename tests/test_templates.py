"""Tests for template pattern specs and the Algorithm 4 detector."""

import pytest

from repro.exceptions import TemplateError
from repro.graph import Graph, complete_graph
from repro.templates import (
    BRIDGE,
    BUILTIN_TEMPLATES,
    NEW,
    NEW_FORM,
    NEW_JOIN,
    ORIGINAL,
    Labeling,
    TemplateSpec,
    detect_on_snapshots,
    detect_template_cliques,
    labeling_from_partition,
    labeling_from_snapshots,
    no_possible_triangles,
)


def clique_edges(members):
    return [(u, v) for i, u in enumerate(members) for v in members[i + 1 :]]


@pytest.fixture
def new_form_snapshots():
    """Five original vertices get fully connected by new edges."""
    old = Graph(vertices="ABCDE")
    old.add_edge("A", "X")
    old.add_edge("B", "X")
    new = old.copy()
    for u, v in clique_edges("ABCDE"):
        new.add_edge(u, v)
    return old, new


@pytest.fixture
def bridge_snapshots():
    """K3 {A,B,C} and K2 {D,E} merge into a 5-clique."""
    old = Graph(edges=clique_edges("ABC") + clique_edges("DE"))
    new = old.copy()
    for u in "ABC":
        for v in "DE":
            new.add_edge(u, v)
    return old, new


@pytest.fixture
def new_join_snapshots():
    """K3 {D,E,F} joined by new vertices A,B,C into a 6-clique."""
    old = Graph(edges=clique_edges("DEF"))
    new = old.copy()
    for u, v in clique_edges("ABCDEF"):
        if not new.has_edge(u, v):
            new.add_edge(u, v)
    return old, new


class TestLabeling:
    def test_defaults_to_original(self):
        labeling = Labeling()
        assert labeling.edge_label(1, 2) == ORIGINAL
        assert labeling.vertex_label(1) == ORIGINAL

    def test_from_snapshots(self):
        old = Graph(edges=[(1, 2)])
        new = Graph(edges=[(1, 2), (2, 3)])
        labeling = labeling_from_snapshots(old, new)
        assert labeling.edge_label(1, 2) == ORIGINAL
        assert labeling.edge_label(3, 2) == NEW
        assert labeling.vertex_label(3) == NEW

    def test_view_alignment(self):
        labeling = Labeling(edge_labels={(1, 2): NEW})
        view = labeling.view((1, 2, 3))
        assert view.edge_labels == (NEW, ORIGINAL, ORIGINAL)
        assert view.count_edges(NEW) == 1
        assert view.count_vertices(ORIGINAL) == 3

    def test_from_partition(self):
        g = Graph(edges=[(1, 2), (2, 3)])
        labeling = labeling_from_partition(g, {1: "a", 2: "a", 3: "b"})
        assert labeling.edge_label(1, 2) == ORIGINAL
        assert labeling.edge_label(2, 3) == NEW

    def test_partition_must_cover(self):
        g = Graph(edges=[(1, 2)])
        with pytest.raises(TemplateError):
            labeling_from_partition(g, {1: "a"})


class TestBuiltinPredicates:
    def test_new_form_characteristic(self):
        labeling = Labeling(
            edge_labels={(1, 2): NEW, (1, 3): NEW, (2, 3): NEW}
        )
        assert NEW_FORM.characteristic(labeling.view((1, 2, 3)))

    def test_new_form_rejects_new_vertex(self):
        labeling = Labeling(
            edge_labels={(1, 2): NEW, (1, 3): NEW, (2, 3): NEW},
            vertex_labels={3: NEW},
        )
        assert not NEW_FORM.characteristic(labeling.view((1, 2, 3)))

    def test_new_form_has_no_possible_triangles(self):
        assert NEW_FORM.possible is no_possible_triangles

    def test_bridge_characteristic(self):
        labeling = Labeling(edge_labels={(1, 2): NEW, (1, 3): NEW})
        assert BRIDGE.characteristic(labeling.view((1, 2, 3)))

    def test_bridge_possible_all_original(self):
        labeling = Labeling()
        assert BRIDGE.possible(labeling.view((1, 2, 3)))

    def test_new_join_characteristic(self):
        labeling = Labeling(
            edge_labels={(1, 3): NEW, (2, 3): NEW},
            vertex_labels={3: NEW},
        )
        assert NEW_JOIN.characteristic(labeling.view((1, 2, 3)))

    def test_new_join_possible_modes(self):
        all_new = Labeling(
            edge_labels={(1, 2): NEW, (1, 3): NEW, (2, 3): NEW}
        )
        assert NEW_JOIN.possible(all_new.view((1, 2, 3)))
        all_original = Labeling()
        assert NEW_JOIN.possible(all_original.view((1, 2, 3)))
        mixed = Labeling(edge_labels={(1, 2): NEW})
        assert not NEW_JOIN.possible(mixed.view((1, 2, 3)))

    def test_builtin_registry(self):
        assert set(BUILTIN_TEMPLATES) == {
            "new_form", "bridge", "new_join", "stable", "densifying",
        }


class TestDetector:
    def test_new_form_end_to_end(self, new_form_snapshots):
        detection = detect_on_snapshots(*new_form_snapshots, NEW_FORM)
        k, vertices = next(detection.densest_cliques())
        assert vertices == set("ABCDE")
        assert k == 3
        assert detection.max_clique_size_estimate == 5

    def test_bridge_end_to_end(self, bridge_snapshots):
        detection = detect_on_snapshots(*bridge_snapshots, BRIDGE)
        k, vertices = next(detection.densest_cliques())
        assert vertices == set("ABCDE")
        assert k == 3

    def test_new_join_end_to_end(self, new_join_snapshots):
        detection = detect_on_snapshots(*new_join_snapshots, NEW_JOIN)
        k, vertices = next(detection.densest_cliques())
        assert vertices == set("ABCDEF")
        assert k == 4

    def test_nonspecial_edges_scored_zero(self, new_form_snapshots):
        detection = detect_on_snapshots(*new_form_snapshots, NEW_FORM)
        assert detection.scores[("A", "X")] == 0
        assert detection.scores[("A", "B")] == 3 + 2

    def test_no_matches_yields_empty_detection(self):
        old = complete_graph(4)
        detection = detect_on_snapshots(old, old.copy(), NEW_FORM)
        assert detection.special_edges == set()
        assert detection.max_clique_size_estimate == 0
        assert list(detection.densest_cliques()) == []

    def test_plot_has_arena_vertices(self, new_form_snapshots):
        detection = detect_on_snapshots(*new_form_snapshots, NEW_FORM)
        plot = detection.plot()
        assert len(plot.order) == detection.arena.num_vertices
        assert plot.max_height == 5

    def test_bridge_possible_triangles_recorded(self):
        """The paper's Fig 4(b): the all-original triangle BCD inside a
        bridge clique is a *possible* triangle.  In a full merge its edges
        are also covered by characteristic triangles, so the possible rule
        is definitional for Bridge (the triangle is recorded, the edge set
        does not change) — unlike New Join, where it is load-bearing."""
        old = Graph(edges=clique_edges("BCD") + clique_edges("AE"))
        new = old.copy()
        for u in "AE":
            for v in "BCD":
                new.add_edge(u, v)
        detection = detect_on_snapshots(old, new, BRIDGE)
        assert ("B", "C", "D") in detection.possible_triangles
        k, vertices = next(detection.densest_cliques())
        assert vertices == set("ABCDE")
        assert k == 3

    def test_new_join_needs_all_new_possible_triangles(self):
        """For New Join, edges among the joining (new) vertices are covered
        only by the all-new possible triangles — dropping the possible rule
        shrinks the detected clique estimate (Fig 4(c)'s triangle ABC)."""
        old = Graph(edges=clique_edges("DEF"))
        new = old.copy()
        for u, v in clique_edges("ABCDEF"):
            if not new.has_edge(u, v):
                new.add_edge(u, v)
        crippled = TemplateSpec(
            name="new-join-no-possible",
            characteristic=NEW_JOIN.characteristic,
            possible=no_possible_triangles,
        )
        full = detect_on_snapshots(old, new, NEW_JOIN)
        partial = detect_on_snapshots(old, new, crippled)
        assert full.max_clique_size_estimate == 6
        assert partial.max_clique_size_estimate < 6
        assert ("A", "B") in full.special_edges
        assert ("A", "B") not in partial.special_edges

    def test_static_partition_bridge(self):
        """The PPI-style static variant: inter-complex edges are 'new'."""
        g = Graph()
        for u, v in clique_edges(["a1", "a2", "a3"]):
            g.add_edge(u, v)
        for u, v in clique_edges(["b1", "b2", "b3"]):
            g.add_edge(u, v)
        # a1 bridges into complex b.
        for v in ("b1", "b2", "b3"):
            g.add_edge("a1", v)
        partition = {v: v[0] for v in g.vertices()}
        labeling = labeling_from_partition(g, partition)
        detection = detect_template_cliques(g, labeling, BRIDGE)
        k, vertices = next(detection.densest_cliques())
        assert "a1" in vertices
        assert {"b1", "b2", "b3"} <= vertices


class TestExtraBuiltins:
    def test_stable_detects_persistent_clique(self):
        old = Graph(edges=clique_edges("ABCDE"))
        new = old.copy()
        new.add_edge("A", "X")
        from repro.templates import STABLE

        detection = detect_on_snapshots(old, new, STABLE)
        k, vertices = next(detection.densest_cliques())
        assert vertices == set("ABCDE")
        assert k == 3

    def test_stable_ignores_new_structure(self):
        old = Graph(vertices="ABCDE")
        old.add_edge("A", "X")
        new = old.copy()
        for u, v in clique_edges("ABCDE"):
            new.add_edge(u, v)
        from repro.templates import STABLE

        detection = detect_on_snapshots(old, new, STABLE)
        assert detection.max_clique_size_estimate == 0

    def test_densifying_detects_wedge_closures(self):
        """A K5 missing two edges in 2003 gets them closed in 2004."""
        members = "ABCDE"
        old = Graph(edges=clique_edges(members))
        old.remove_edge("A", "B")
        old.remove_edge("C", "D")
        new = Graph(edges=clique_edges(members))
        from repro.templates import DENSIFYING

        detection = detect_on_snapshots(old, new, DENSIFYING)
        k, vertices = next(detection.densest_cliques())
        assert vertices == set(members)
        assert k == 3  # the completed 5-clique

    def test_densifying_ignores_pure_new_cliques(self):
        old = Graph(vertices="ABC")
        old.add_edge("A", "X")
        new = old.copy()
        for u, v in clique_edges("ABC"):
            new.add_edge(u, v)
        from repro.templates import DENSIFYING

        detection = detect_on_snapshots(old, new, DENSIFYING)
        assert detection.characteristic_triangles == []
