"""Tests for perturbation/robustness analysis."""

import pytest

from repro.analysis import perturb_edges, robustness_report
from repro.graph import Graph, complete_graph, planted_cliques


class TestPerturbEdges:
    def test_delete_fraction(self):
        g = complete_graph(10)  # 45 edges
        perturbed = perturb_edges(g, 0.2, seed=1)
        assert perturbed.num_edges == 36
        assert g.num_edges == 45  # original untouched

    def test_rewire_preserves_edge_count(self):
        g = complete_graph(6)
        # K6 is complete, so rewiring can't reinsert; use a sparse graph.
        g = planted_cliques(40, [6], background_p=0.05, seed=2).graph
        before = g.num_edges
        perturbed = perturb_edges(g, 0.2, seed=3, mode="rewire")
        assert perturbed.num_edges == before

    def test_zero_fraction_is_identity(self):
        g = complete_graph(5)
        assert perturb_edges(g, 0.0, seed=4) == g

    def test_full_fraction_removes_everything(self):
        g = complete_graph(5)
        assert perturb_edges(g, 1.0, seed=5).num_edges == 0

    def test_deterministic(self):
        g = planted_cliques(30, [5], background_p=0.1, seed=6).graph
        assert perturb_edges(g, 0.3, seed=7) == perturb_edges(g, 0.3, seed=7)

    def test_invalid_arguments(self):
        g = complete_graph(4)
        with pytest.raises(ValueError):
            perturb_edges(g, 1.5)
        with pytest.raises(ValueError):
            perturb_edges(g, 0.5, mode="scramble")


class TestRobustnessReport:
    @pytest.fixture(scope="class")
    def planted(self):
        return planted_cliques(120, [10], background_p=0.02, seed=8).graph

    def test_baseline_is_the_planted_clique(self, planted):
        report = robustness_report(
            planted, fractions=(0.05,), trials_per_fraction=2, seed=9
        )
        assert report.baseline_max_kappa == 8
        assert set(range(10)) == set(report.baseline_core)

    def test_density_retention_decreases_with_noise(self, planted):
        report = robustness_report(
            planted,
            fractions=(0.02, 0.3),
            trials_per_fraction=3,
            seed=10,
        )
        assert report.mean_core_kappa_after(0.02) > (
            report.mean_core_kappa_after(0.3)
        )

    def test_breakdown_fraction_monotone_semantics(self, planted):
        report = robustness_report(
            planted,
            fractions=(0.02, 0.3, 0.6),
            trials_per_fraction=2,
            seed=11,
        )
        breakdown = report.breakdown_fraction(retention_threshold=0.5)
        assert breakdown in (0.02, 0.3, 0.6, 1.0)
        # Light noise cannot already be past the breakdown for a clique
        # that only loses ~2% of edges.
        assert breakdown > 0.02

    def test_by_fraction_grouping(self, planted):
        report = robustness_report(
            planted, fractions=(0.05, 0.1), trials_per_fraction=2, seed=12
        )
        grouped = report.by_fraction()
        assert list(grouped) == [0.05, 0.1]
        assert all(len(trials) == 2 for trials in grouped.values())

    def test_unknown_fraction_query(self, planted):
        report = robustness_report(
            planted, fractions=(0.05,), trials_per_fraction=1, seed=13
        )
        with pytest.raises(ValueError):
            report.mean_core_overlap(0.5)

    def test_triangle_free_graph(self):
        g = Graph(edges=[(0, 1), (1, 2), (2, 3)])
        report = robustness_report(
            g, fractions=(0.25,), trials_per_fraction=1, seed=14
        )
        assert report.baseline_max_kappa == 0
        assert report.breakdown_fraction() == 1.0


class TestEngineRouting:
    """PR 3: diff-based perturbation through the engine, recompute fallback."""

    def test_perturbation_diff_matches_perturb_edges(self):
        from repro.analysis.robustness import perturbation_diff

        g = planted_cliques(30, [5], background_p=0.08, seed=9).graph
        for mode in ("delete", "rewire"):
            added, removed = perturbation_diff(g, 0.15, seed=11, mode=mode)
            rebuilt = g.copy()
            for u, v in removed:
                rebuilt.remove_edge(u, v)
            for u, v in added:
                rebuilt.add_edge(u, v)
            assert rebuilt == perturb_edges(g, 0.15, seed=11, mode=mode), mode

    @pytest.mark.parametrize("mode", ["delete", "rewire"])
    def test_methods_produce_identical_trials(self, mode):
        g = planted_cliques(25, [6], background_p=0.06, seed=4).graph
        kwargs = dict(
            fractions=(0.05, 0.2), trials_per_fraction=2, mode=mode, seed=2
        )
        dynamic = robustness_report(g, method="dynamic", **kwargs)
        recompute = robustness_report(g, method="recompute", **kwargs)
        assert dynamic.baseline_max_kappa == recompute.baseline_max_kappa
        assert dynamic.baseline_core == recompute.baseline_core
        assert dynamic.trials == recompute.trials

    def test_base_graph_untouched_by_dynamic_sweep(self):
        g = complete_graph(8)
        edges_before = set(g.edges())
        version_before = g.version
        robustness_report(g, fractions=(0.3,), trials_per_fraction=3)
        assert set(g.edges()) == edges_before
        assert g.version == version_before

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError, match="method"):
            robustness_report(complete_graph(5), method="guess")
