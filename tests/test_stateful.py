"""Stateful property testing of the dynamic maintainer.

A hypothesis rule-based state machine drives a
:class:`~repro.core.dynamic.DynamicTriangleKCore` (in both triangle-store
modes) through arbitrary interleavings of edge insertions, deletions,
vertex removals and batch applications, checking after every step that:

* the kappa map equals a fresh Algorithm 1 run (the core guarantee);
* the stored triangle index, when enabled, stays consistent;
* queries (max_kappa, result snapshots) agree with the ground truth.

This subsumes hundreds of hand-written interleaving tests.
"""

from __future__ import annotations

import pytest
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    precondition,
    rule,
)

from repro.baselines.recompute import RecomputeBaseline
from repro.core import DynamicTriangleKCore, triangle_kcore_decomposition
from repro.engine import Engine
from repro.graph import Graph

VERTICES = list(range(8))


class DynamicMaintainerMachine(RuleBasedStateMachine):
    """Random walks over the maintainer's write API."""

    def __init__(self):
        super().__init__()
        self.maintainer = DynamicTriangleKCore(
            Graph(vertices=VERTICES), copy=False
        )

    # ------------------------------------------------------------------ #
    # rules
    # ------------------------------------------------------------------ #

    @rule(u=st.sampled_from(VERTICES), v=st.sampled_from(VERTICES))
    def toggle_edge(self, u, v):
        if u == v:
            return
        if self.maintainer.graph.has_edge(u, v):
            self.maintainer.remove_edge(u, v)
        else:
            self.maintainer.add_edge(u, v)

    @rule(vertex=st.sampled_from(VERTICES))
    def remove_and_restore_vertex(self, vertex):
        if not self.maintainer.graph.has_vertex(vertex):
            self.maintainer.add_vertex(vertex)
            return
        self.maintainer.remove_vertex(vertex)
        self.maintainer.add_vertex(vertex)

    @rule(
        pairs=st.lists(
            st.tuples(st.sampled_from(VERTICES), st.sampled_from(VERTICES)),
            max_size=5,
        ),
        strategy=st.sampled_from(["incremental", "batch", "recompute", "auto"]),
    )
    def batch_apply(self, pairs, strategy):
        graph = self.maintainer.graph
        added = []
        removed = []
        seen = set()
        for u, v in pairs:
            if u == v:
                continue
            key = (min(u, v), max(u, v))
            if key in seen:
                continue
            seen.add(key)
            if graph.has_edge(u, v):
                removed.append((u, v))
            elif graph.has_vertex(u) and graph.has_vertex(v):
                added.append((u, v))
        self.maintainer.apply(added=added, removed=removed, strategy=strategy)

    # ------------------------------------------------------------------ #
    # invariants
    # ------------------------------------------------------------------ #

    @invariant()
    def kappa_matches_fresh_decomposition(self):
        expected = triangle_kcore_decomposition(self.maintainer.graph).kappa
        assert self.maintainer.kappa == expected

    @invariant()
    def max_kappa_agrees(self):
        values = list(self.maintainer.kappa.values())
        assert self.maintainer.max_kappa == (max(values) if values else 0)

    @invariant()
    def result_snapshot_consistent(self):
        result = self.maintainer.result()
        assert result.kappa == self.maintainer.kappa


class StoredModeMachine(DynamicMaintainerMachine):
    """Same walk with the triangle store enabled."""

    def __init__(self):
        RuleBasedStateMachine.__init__(self)
        self.maintainer = DynamicTriangleKCore(
            Graph(vertices=VERTICES), copy=False, store_triangles=True
        )

    @invariant()
    def store_is_consistent(self):
        assert self.maintainer._store.is_consistent()


class DiffApplyBaselineMachine(RuleBasedStateMachine):
    """Drive ``diff_apply`` and ``remove_vertex`` against RecomputeBaseline.

    The main machine above checks kappa against a fresh Algorithm 1 run;
    this one pits the maintainer against the paper's Table III baseline
    object (an independently-mutated graph plus recompute) after *every*
    rule, and additionally checks that each :class:`KappaDelta` is exact
    bookkeeping: ``before + delta == after``, edge for edge.
    """

    def __init__(self):
        super().__init__()
        self.maintainer = DynamicTriangleKCore(
            Graph(vertices=VERTICES), copy=False
        )
        self.baseline = RecomputeBaseline(Graph(vertices=VERTICES))

    @rule(
        pairs=st.lists(
            st.tuples(st.sampled_from(VERTICES), st.sampled_from(VERTICES)),
            max_size=6,
        ),
        strategy=st.sampled_from(["incremental", "batch", "recompute", "auto"]),
    )
    def diff_apply_batch(self, pairs, strategy):
        graph = self.maintainer.graph
        added, removed, seen = [], [], set()
        for u, v in pairs:
            if u == v:
                continue
            key = (min(u, v), max(u, v))
            if key in seen:
                continue
            seen.add(key)
            if graph.has_edge(u, v):
                removed.append((u, v))
            elif graph.has_vertex(u) and graph.has_vertex(v):
                added.append((u, v))
        before = dict(self.maintainer.kappa)
        delta = self.maintainer.diff_apply(
            added=added, removed=removed, strategy=strategy
        )
        after = dict(self.maintainer.kappa)
        # Delta arithmetic must reconstruct the after-map exactly.
        rebuilt = dict(before)
        for edge, old in delta.deleted.items():
            assert rebuilt.pop(edge) == old
        for edge, k in delta.created.items():
            assert edge not in rebuilt
            rebuilt[edge] = k
        for edge, (old, new) in delta.promoted.items():
            assert rebuilt[edge] == old and new > old
            rebuilt[edge] = new
        for edge, (old, new) in delta.demoted.items():
            assert rebuilt[edge] == old and new < old
            rebuilt[edge] = new
        assert rebuilt == after
        assert delta.touched_edges() == {
            e for e in set(before) | set(after)
            if before.get(e) != after.get(e)
        }
        assert delta.is_empty == (before == after)
        self.baseline.apply(added=added, removed=removed)

    @rule(vertex=st.sampled_from(VERTICES))
    def remove_vertex(self, vertex):
        if not self.maintainer.graph.has_vertex(vertex):
            self.maintainer.add_vertex(vertex)
            return
        incident = [
            (vertex, neighbor)
            for neighbor in self.maintainer.graph.neighbors(vertex)
        ]
        self.maintainer.remove_vertex(vertex)
        self.maintainer.add_vertex(vertex)
        self.baseline.apply(removed=incident)

    @invariant()
    def kappa_matches_recompute_baseline(self):
        assert self.maintainer.kappa == self.baseline.kappa


class EngineCacheMachine(RuleBasedStateMachine):
    """Graph mutations can never leave the engine serving stale kappa.

    Random structural edits interleave with cached ``Engine.decompose``
    calls (across every backend, including the warm dynamic maintainer).
    Invariants: the mutation counter bumps on every effective write (and
    only then), and whatever the cache serves equals a fresh Algorithm 1
    run — the engine's core safety property.
    """

    def __init__(self):
        super().__init__()
        self.graph = Graph(vertices=VERTICES)
        self.engine = Engine(max_cached_graphs=4)
        self.last_version = self.graph.version

    def _expect_bump(self, mutated: bool, before: int) -> None:
        if mutated:
            assert self.graph.version > before
        else:
            assert self.graph.version == before

    @rule(u=st.sampled_from(VERTICES), v=st.sampled_from(VERTICES))
    def toggle_edge(self, u, v):
        if u == v:
            return
        before = self.graph.version
        if self.graph.has_edge(u, v):
            self.graph.remove_edge(u, v)
        elif self.graph.has_vertex(u) and self.graph.has_vertex(v):
            self.graph.add_edge(u, v)
        else:
            return
        self._expect_bump(True, before)

    @rule(vertex=st.sampled_from(VERTICES))
    def remove_and_restore_vertex(self, vertex):
        before = self.graph.version
        if self.graph.has_vertex(vertex):
            self.graph.remove_vertex(vertex)
            self._expect_bump(True, before)
        else:
            self.graph.add_vertex(vertex)
            self._expect_bump(True, before)

    @rule(vertex=st.sampled_from(VERTICES))
    def noop_add_existing_vertex(self, vertex):
        if self.graph.has_vertex(vertex):
            before = self.graph.version
            self.graph.add_vertex(vertex)
            self._expect_bump(False, before)

    @rule(backend=st.sampled_from(["auto", "reference", "csr", "dynamic"]))
    def cached_decompose_is_fresh(self, backend):
        result = self.engine.decompose(self.graph, backend=backend)
        expected = triangle_kcore_decomposition(self.graph).kappa
        assert result.kappa == expected
        # Immediately served again (possibly from cache): still current.
        assert self.engine.decompose(self.graph, backend=backend).kappa == expected

    @invariant()
    def version_is_monotonic(self):
        assert self.graph.version >= self.last_version
        self.last_version = self.graph.version


TestDynamicMaintainerMachine = DynamicMaintainerMachine.TestCase
TestDynamicMaintainerMachine.settings = settings(
    max_examples=25, stateful_step_count=30, deadline=None
)

TestStoredModeMachine = StoredModeMachine.TestCase
TestStoredModeMachine.settings = settings(
    max_examples=15, stateful_step_count=25, deadline=None
)

TestDiffApplyBaselineMachine = DiffApplyBaselineMachine.TestCase
TestDiffApplyBaselineMachine.settings = settings(
    max_examples=15, stateful_step_count=20, deadline=None
)

TestEngineCacheMachine = EngineCacheMachine.TestCase
TestEngineCacheMachine.settings = settings(
    max_examples=20, stateful_step_count=25, deadline=None
)
