"""Tests for sliding-window density monitoring."""

import random

import pytest

from repro.analysis import SlidingWindowDensity
from repro.core import triangle_kcore_decomposition
from repro.exceptions import ReproError
from repro.graph import Graph


class TestWindowMechanics:
    def test_triangle_forms_and_expires(self):
        monitor = SlidingWindowDensity(window=10)
        monitor.observe(0, 1, 0)
        monitor.observe(1, 2, 1)
        monitor.observe(0, 2, 2)
        assert monitor.max_kappa == 1
        expired = monitor.advance_to(11)
        assert expired == 2  # edges at t=0,1 are out; t=2 survives
        assert monitor.max_kappa == 0
        assert monitor.num_edges == 1

    def test_refresh_extends_lifetime(self):
        monitor = SlidingWindowDensity(window=10)
        monitor.observe(0, 1, 0)
        monitor.observe(1, 2, 0)
        monitor.observe(0, 2, 0)
        monitor.observe(0, 1, 9)  # refresh one edge
        monitor.advance_to(15)
        assert monitor.num_edges == 1
        assert monitor.graph.has_edge(0, 1)

    def test_out_of_order_rejected(self):
        monitor = SlidingWindowDensity(window=5)
        monitor.observe(0, 1, 10)
        with pytest.raises(ReproError):
            monitor.observe(1, 2, 3)

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            SlidingWindowDensity(window=0)

    def test_repeated_observation_same_timestamp(self):
        monitor = SlidingWindowDensity(window=5)
        monitor.observe(0, 1, 0)
        monitor.observe(0, 1, 0)
        assert monitor.num_edges == 1


class TestQueries:
    def test_kappa_of_live_edge(self):
        monitor = SlidingWindowDensity(window=100)
        for t, (u, v) in enumerate([(0, 1), (1, 2), (0, 2), (2, 3)]):
            monitor.observe(u, v, t)
        assert monitor.kappa_of(0, 1) == 1
        assert monitor.kappa_of(2, 3) == 0

    def test_densest_community(self):
        monitor = SlidingWindowDensity(window=100)
        t = 0
        for u in range(5):
            for v in range(u + 1, 5):
                monitor.observe(u, v, t)
                t += 1
        level, members = monitor.densest_community()
        assert level == 3
        assert members == set(range(5))

    def test_densest_community_empty(self):
        monitor = SlidingWindowDensity(window=5)
        monitor.observe(0, 1, 0)
        assert monitor.densest_community() == (0, set())

    def test_alert_threshold(self):
        monitor = SlidingWindowDensity(window=100)
        t = 0
        for u in range(4):
            for v in range(u + 1, 4):
                monitor.observe(u, v, t)
                t += 1
        assert monitor.alert_when(2)       # K4 formed
        assert not monitor.alert_when(3)


class TestEdgeCases:
    def test_advance_to_out_of_order_rejected_and_state_intact(self):
        monitor = SlidingWindowDensity(window=10)
        monitor.observe(0, 1, 5)
        with pytest.raises(ReproError):
            monitor.advance_to(2)
        # The failed advance must not have expired or corrupted anything.
        assert monitor.num_edges == 1
        assert monitor.now == 5
        monitor.advance_to(5)  # equal timestamps are fine (not "backwards")
        assert monitor.num_edges == 1

    def test_advance_to_exact_horizon_boundary(self):
        monitor = SlidingWindowDensity(window=10)
        monitor.observe(0, 1, 0)
        # horizon = t - window; an edge stamped exactly at the horizon
        # has age == window and is expired (strict "last window units").
        assert monitor.advance_to(10) == 1
        assert monitor.num_edges == 0

    def test_alert_when_crosses_both_directions(self):
        monitor = SlidingWindowDensity(window=10)
        assert not monitor.alert_when(1)  # empty window: below threshold
        monitor.observe(0, 1, 0)
        monitor.observe(1, 2, 1)
        monitor.observe(0, 2, 2)
        assert monitor.alert_when(1)  # upward crossing: triangle formed
        monitor.advance_to(11)  # edges at t=0,1 expire; triangle breaks
        assert not monitor.alert_when(1)  # downward crossing
        for u, v in [(0, 1), (1, 2), (0, 2)]:
            monitor.observe(u, v, 12)
        assert monitor.alert_when(1)  # upward crossing again

    def test_alert_threshold_zero_always_true(self):
        monitor = SlidingWindowDensity(window=5)
        assert monitor.alert_when(0)  # max_kappa of empty state is 0

    def test_densest_community_triangle_free_window(self):
        monitor = SlidingWindowDensity(window=100)
        # A path graph: plenty of edges, zero triangles.
        for t, (u, v) in enumerate([(0, 1), (1, 2), (2, 3), (3, 4)]):
            monitor.observe(u, v, t)
        assert monitor.max_kappa == 0
        assert monitor.densest_community() == (0, set())

    def test_densest_community_after_expiry_back_to_triangle_free(self):
        monitor = SlidingWindowDensity(window=10)
        monitor.observe(0, 1, 0)
        monitor.observe(1, 2, 1)
        monitor.observe(0, 2, 2)
        assert monitor.densest_community()[0] == 1
        monitor.advance_to(50)
        assert monitor.densest_community() == (0, set())
        assert monitor.num_edges == 0


class TestEquivalenceWithStatic:
    @pytest.mark.parametrize("store_triangles", [False, True])
    def test_window_state_matches_fresh_decomposition(self, store_triangles):
        rng = random.Random(3)
        monitor = SlidingWindowDensity(
            window=25, store_triangles=store_triangles
        )
        events = []
        for t in range(120):
            u, v = rng.sample(range(10), 2)
            monitor.observe(u, v, t)
            events.append((u, v, t))
        # Rebuild the expected window graph from scratch.
        expected = Graph()
        horizon = monitor.now - monitor.window
        latest = {}
        from repro.graph import canonical_edge

        for u, v, t in events:
            latest[canonical_edge(u, v)] = t
        for (u, v), t in latest.items():
            if t > horizon:
                expected.add_edge(u, v, exist_ok=True)
        assert set(monitor.graph.edges()) == set(expected.edges())
        assert monitor._maintainer.kappa == (
            triangle_kcore_decomposition(expected).kappa
        )
