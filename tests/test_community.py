"""Tests for triangle-connected community search (index and one-shot)."""

import pytest

from repro.core import (
    CommunityIndex,
    community_of_edge,
    community_of_vertex,
    triangle_connected_components,
    triangle_kcore_decomposition,
)
from repro.exceptions import EdgeNotFoundError, VertexNotFoundError
from repro.graph import Graph, complete_graph, erdos_renyi


@pytest.fixture
def butterfly():
    """Two K4s sharing vertex 3."""
    g = complete_graph(4)
    for u in (10, 11, 12):
        g.add_edge(3, u)
    for i, u in enumerate((10, 11, 12)):
        for v in (10, 11, 12)[i + 1 :]:
            g.add_edge(u, v)
    return g


class TestCommunityIndex:
    def test_edge_community_defaults_to_own_level(self, butterfly):
        index = CommunityIndex(butterfly)
        community = index.community_of_edge(0, 1)
        assert len(community) == 6  # the first K4

    def test_edge_community_at_lower_level_merges(self, butterfly):
        index = CommunityIndex(butterfly)
        # At level 1 both K4s stay triangle-connected only through shared
        # triangles; sharing a vertex is not enough, so still 2 communities.
        assert len(index.communities_at(1)) == 2

    def test_unknown_edge_raises(self, butterfly):
        index = CommunityIndex(butterfly)
        with pytest.raises(EdgeNotFoundError):
            index.community_of_edge(0, 99)

    def test_level_above_edge_kappa_is_empty(self, butterfly):
        index = CommunityIndex(butterfly)
        assert index.community_of_edge(0, 1, k=5) == set()

    def test_level_zero_is_empty(self, butterfly):
        index = CommunityIndex(butterfly)
        assert index.community_of_edge(0, 1, k=0) == set()

    def test_vertex_in_two_communities(self, butterfly):
        index = CommunityIndex(butterfly)
        communities = index.community_of_vertex(3)
        assert len(communities) == 2
        assert {0, 1, 2, 3} in communities
        assert {3, 10, 11, 12} in communities

    def test_unknown_vertex_raises(self, butterfly):
        with pytest.raises(VertexNotFoundError):
            CommunityIndex(butterfly).community_of_vertex("ghost")

    def test_densest_community_of_isolated_vertex(self):
        g = Graph(edges=[(0, 1)], vertices=[9])
        index = CommunityIndex(g)
        assert index.densest_community_of_vertex(9) == (0, {9})

    def test_densest_community_prefers_larger(self, butterfly):
        index = CommunityIndex(butterfly)
        level, members = index.densest_community_of_vertex(3)
        assert level == 2
        assert len(members) == 4

    def test_iteration_densest_first(self, butterfly):
        index = CommunityIndex(butterfly)
        levels = [k for k, _ in index]
        assert levels == sorted(levels, reverse=True)

    def test_matches_bfs_components_on_random_graphs(self):
        for seed in range(3):
            g = erdos_renyi(35, 0.25, seed=seed)
            result = triangle_kcore_decomposition(g)
            index = CommunityIndex(g, result)
            for k in range(1, result.max_kappa + 1):
                from_bfs = {
                    frozenset(c)
                    for c in triangle_connected_components(g, result, k)
                }
                from_index = {frozenset(c) for c in index.communities_at(k)}
                assert from_bfs == from_index, (seed, k)

    def test_out_of_range_levels(self, k5):
        index = CommunityIndex(k5)
        assert index.communities_at(0) == []
        assert index.communities_at(99) == []


class TestOneShotSearch:
    def test_edge_query_matches_index(self, butterfly):
        index = CommunityIndex(butterfly)
        assert community_of_edge(butterfly, 0, 1) == index.community_of_edge(0, 1)

    def test_vertex_query_matches_index(self, butterfly):
        index = CommunityIndex(butterfly)
        assert community_of_vertex(butterfly, 3) == index.community_of_vertex(3)

    def test_unknown_edge(self, butterfly):
        with pytest.raises(EdgeNotFoundError):
            community_of_edge(butterfly, 0, 99)

    def test_unknown_vertex(self, butterfly):
        with pytest.raises(VertexNotFoundError):
            community_of_vertex(butterfly, "ghost")

    def test_reuses_precomputed_result(self, k5):
        result = triangle_kcore_decomposition(k5)
        community = community_of_edge(k5, 0, 1, result=result)
        assert len(community) == 10

    def test_triangle_free_vertex_has_no_communities(self):
        g = Graph(edges=[(0, 1), (1, 2)])
        assert community_of_vertex(g, 1) == []
