"""Unit tests for snapshot streams and edge/vertex classification."""

import pytest

from repro.graph import (
    Graph,
    SnapshotStream,
    apply_delta,
    classify_edges,
    classify_vertices,
    union_graph,
)


@pytest.fixture
def small_stream():
    g0 = Graph(edges=[(1, 2)])
    g1 = Graph(edges=[(1, 2), (2, 3), (1, 3)])
    g2 = Graph(edges=[(2, 3), (1, 3)], vertices=[9])
    return SnapshotStream([g0, g1, g2])


class TestSnapshotStream:
    def test_requires_snapshots(self):
        with pytest.raises(ValueError):
            SnapshotStream([])

    def test_len_and_indexing(self, small_stream):
        assert len(small_stream) == 3
        assert small_stream[0].num_edges == 1

    def test_snapshots_are_copies(self):
        g = Graph(edges=[(1, 2)])
        stream = SnapshotStream([g])
        g.add_edge(2, 3)
        assert stream[0].num_edges == 1

    def test_delta_added_and_removed(self, small_stream):
        d1 = small_stream.delta(1)
        assert d1.added_edges == ((1, 3), (2, 3))
        assert d1.removed_edges == ()
        d2 = small_stream.delta(2)
        assert d2.removed_edges == ((1, 2),)
        assert d2.new_vertices == (9,)

    def test_delta_zero_uses_empty_predecessor(self, small_stream):
        d0 = small_stream.delta(0)
        assert d0.added_edges == ((1, 2),)
        assert set(d0.new_vertices) == {1, 2}

    def test_delta_out_of_range(self, small_stream):
        with pytest.raises(IndexError):
            small_stream.delta(3)

    def test_pairs(self, small_stream):
        pairs = list(small_stream.pairs())
        assert len(pairs) == 2
        old, new, delta = pairs[0]
        assert old.num_edges == 1 and new.num_edges == 3
        assert not delta.is_empty

    def test_apply_delta_replays_stream(self, small_stream):
        current = small_stream[0]
        for index in range(1, len(small_stream)):
            current = apply_delta(current, small_stream.delta(index))
            assert set(current.edges()) == set(small_stream[index].edges())


class TestClassification:
    def test_union_graph(self):
        old = Graph(edges=[(1, 2)])
        new = Graph(edges=[(2, 3)])
        merged = union_graph(old, new)
        assert merged.num_edges == 2
        assert merged.num_vertices == 3

    def test_classify_edges(self):
        old = Graph(edges=[(1, 2)])
        new = Graph(edges=[(1, 2), (2, 3)])
        labels = classify_edges(old, new)
        assert labels[(1, 2)] == "original"
        assert labels[(2, 3)] == "new"

    def test_removed_edges_stay_original(self):
        old = Graph(edges=[(1, 2), (2, 3)])
        new = Graph(edges=[(2, 3)])
        labels = classify_edges(old, new)
        assert labels[(1, 2)] == "original"

    def test_classify_vertices(self):
        old = Graph(edges=[(1, 2)])
        new = Graph(edges=[(1, 2), (3, 4)])
        labels = classify_vertices(old, new)
        assert labels[1] == "original"
        assert labels[3] == "new"
