"""Extension bench — noise sensitivity of the PPI case study.

The paper's Fig 7 clique 3 shows how a *single* missing edge reads on the
density plot (10-clique at height 9).  This bench generalizes the
question: how much random edge loss can the PPI stand-in absorb before
its planted cliques stop surfacing?
"""

from __future__ import annotations

from repro.analysis import robustness_report

from common import format_table, write_report

FRACTIONS = (0.01, 0.05, 0.1, 0.2, 0.4)


def test_bench_robustness(benchmark, dataset_loader):
    graph = dataset_loader("ppi").graph
    benchmark.pedantic(
        lambda: robustness_report(
            graph, fractions=(0.05,), trials_per_fraction=1, seed=3
        ),
        rounds=1,
        iterations=1,
    )


def test_robustness_report(dataset_loader, benchmark):
    benchmark.pedantic(
        lambda: _robustness_report(dataset_loader), rounds=1, iterations=1
    )


def _robustness_report(dataset_loader):
    graph = dataset_loader("ppi").graph
    report = robustness_report(
        graph, fractions=FRACTIONS, trials_per_fraction=3, seed=5
    )
    rows = []
    for fraction in FRACTIONS:
        rows.append(
            (
                f"{fraction:.0%}",
                f"{report.mean_core_kappa_after(fraction):.1f}"
                f"/{report.baseline_max_kappa}",
                f"{report.mean_core_overlap(fraction):.2f}",
            )
        )
    lines = format_table(
        ("edge loss", "core kappa retained", "champion overlap"), rows
    )
    lines.append("")
    lines.append(
        f"baseline core: the planted 10-clique (kappa "
        f"{report.baseline_max_kappa}); breakdown (<50% density retained) "
        f"at ~{report.breakdown_fraction():.0%} edge loss."
    )
    lines.append(
        "reading: the Fig 7 plateaus are robust to realistic PPI noise"
    )
    lines.append(
        "levels (a few percent); champion overlap is volatile because "
        "near-equal cores swap ranks under noise."
    )
    write_report("robustness_ppi", lines)

    assert report.mean_core_kappa_after(0.01) >= 0.8 * report.baseline_max_kappa
    assert report.mean_core_kappa_after(0.4) < report.mean_core_kappa_after(0.01)
