"""Engine layer — dispatch overhead, warm-cache wins, dynamic timelines.

PR 3 routes every kappa consumer through :class:`repro.engine.Engine`.
That indirection must be close to free when it cannot help and clearly
profitable when it can.  Three measurements, two artifacts:

* **cold overhead** — a fresh engine's ``decompose(use_cache=False)`` vs a
  direct ``triangle_kcore_decomposition`` call on the same graph/backend.
  Gate: < 5% wall-clock overhead (dispatch + instrumentation).
* **warm cache** — repeat decomposition of an unmutated graph (the
  CommunityIndex-then-hierarchy-then-plot access pattern) served from the
  version-keyed cache.
* **dynamic timeline** — a >= 20-snapshot churn stream answered by
  ``backend="dynamic"`` (diff + incremental apply against the engine's
  warm maintainer) vs a per-snapshot reference recompute.
  Gate: >= 2x total wall clock, bit-identical kappa maps throughout.

Artifacts: ``benchmarks/results/engine_overhead.txt`` (human table) and
``BENCH_engine.json`` at the repo root (machine-readable gates).
"""

from __future__ import annotations

import gc
import json
import time
from pathlib import Path

import pytest

from repro.core import triangle_kcore_decomposition
from repro.engine import Engine
from repro.graph.generators import random_edge_sample, random_non_edges

from common import format_table, write_report

REPO_ROOT = Path(__file__).parent.parent
BENCH_JSON = REPO_ROOT / "BENCH_engine.json"

#: Mid-sized Table II graph: big enough to amortize per-call dispatch.
OVERHEAD_DATASET = "dblp"
MAX_COLD_OVERHEAD = 0.05

#: Timeline workload: snapshots of a slowly churning graph.  Must be big
#: enough that a full Algorithm 1 pass clearly dominates an O(E) diff.
TIMELINE_DATASET = "dblp"
TIMELINE_SNAPSHOTS = 24
TIMELINE_CHURN = 0.002
TIMELINE_PASSES = 2
MIN_TIMELINE_SPEEDUP = 2.0

REPEATS = 5
#: The cold comparison resolves a ~1% true difference; it needs more
#: best-of rounds than the order-of-magnitude measurements do.
COLD_REPEATS = 11


def _best_of(fn, repeats: int = REPEATS):
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return result, best


def _best_of_interleaved(fn_a, fn_b, repeats: int = REPEATS):
    """Best-of timing for two contenders, alternating A/B each round.

    Interleaving cancels clock-frequency drift between two sequential
    best-of blocks, which otherwise dominates a sub-100ms comparison.
    Collections are forced between timed regions so the previous
    contender's garbage never lands inside the next measurement.
    """
    fn_a(), fn_b()  # warm allocator / caches outside the timed region
    best_a = best_b = float("inf")
    result_a = result_b = None
    gc_was_enabled = gc.isenabled()
    try:
        for _ in range(repeats):
            gc.collect()
            gc.disable()
            start = time.perf_counter()
            result_a = fn_a()
            best_a = min(best_a, time.perf_counter() - start)
            gc.enable()
            gc.collect()
            gc.disable()
            start = time.perf_counter()
            result_b = fn_b()
            best_b = min(best_b, time.perf_counter() - start)
            gc.enable()
    finally:
        if gc_was_enabled:
            gc.enable()
    return (result_a, best_a), (result_b, best_b)


def _churn_snapshots(graph):
    """>= 20 copies of ``graph`` under small rolling edge churn."""
    working = graph.copy()
    snapshots = []
    for index in range(TIMELINE_SNAPSHOTS):
        removed = random_edge_sample(working, TIMELINE_CHURN, seed=index)
        added = random_non_edges(
            working, len(removed), seed=index, triangle_closing=True
        )
        for u, v in removed:
            working.remove_edge(u, v)
        for u, v in added:
            working.add_edge(u, v)
        snapshots.append(working.copy())
    return snapshots


@pytest.mark.parametrize("path", ["direct", "engine"])
def test_bench_cold_path(benchmark, dataset_loader, path):
    """pytest-benchmark view of the cold decomposition paths."""
    graph = dataset_loader(OVERHEAD_DATASET).graph
    if path == "direct":
        fn = lambda: triangle_kcore_decomposition(graph, backend="reference")
    else:
        fn = lambda: Engine().decompose(
            graph, backend="reference", use_cache=False
        )
    result = benchmark.pedantic(fn, rounds=1, iterations=1)
    assert result.max_kappa >= 0


def test_engine_overhead_report(dataset_loader, benchmark):
    benchmark.pedantic(
        lambda: _engine_overhead_report(dataset_loader), rounds=1, iterations=1
    )


def _engine_overhead_report(dataset_loader):
    graph = dataset_loader(OVERHEAD_DATASET).graph

    # --- cold: engine dispatch + instrumentation vs the direct call ----- #
    (direct_result, direct_seconds), (engine_result, engine_seconds) = (
        _best_of_interleaved(
            lambda: triangle_kcore_decomposition(graph, backend="reference"),
            lambda: Engine().decompose(
                graph, backend="reference", use_cache=False
            ),
            repeats=COLD_REPEATS,
        )
    )
    assert engine_result.kappa == direct_result.kappa
    cold_overhead = engine_seconds / max(direct_seconds, 1e-9) - 1.0

    # --- warm: repeat decomposition served from the version-keyed cache - #
    warm_engine = Engine()
    warm_engine.decompose(graph, backend="reference")
    _, warm_seconds = _best_of(
        lambda: warm_engine.decompose(graph, backend="reference")
    )
    warm_speedup = direct_seconds / max(warm_seconds, 1e-9)
    assert warm_engine.stats.cache_hits >= REPEATS

    # --- timeline: dynamic snapshot strategy vs per-snapshot recompute -- #
    snapshots = _churn_snapshots(dataset_loader(TIMELINE_DATASET).graph)
    assert len(snapshots) >= 20

    reference_seconds = dynamic_seconds = float("inf")
    for _ in range(TIMELINE_PASSES):
        start = time.perf_counter()
        reference_results = [
            triangle_kcore_decomposition(snap, backend="reference")
            for snap in snapshots
        ]
        reference_seconds = min(
            reference_seconds, time.perf_counter() - start
        )

        dynamic_engine = Engine()
        start = time.perf_counter()
        dynamic_results = [
            dynamic_engine.decompose(snap, backend="dynamic", use_cache=False)
            for snap in snapshots
        ]
        dynamic_seconds = min(dynamic_seconds, time.perf_counter() - start)

        for ref, dyn in zip(reference_results, dynamic_results):
            assert ref.kappa == dyn.kappa, "dynamic timeline diverged"
        counters = dynamic_engine.stats.counters
        assert counters["dynamic_cold_starts"] == 1
    timeline_speedup = reference_seconds / max(dynamic_seconds, 1e-9)

    rows = [
        (
            "cold decompose",
            OVERHEAD_DATASET,
            f"{direct_seconds:.4f}",
            f"{engine_seconds:.4f}",
            f"{cold_overhead:+.1%} overhead",
        ),
        (
            "warm cache",
            OVERHEAD_DATASET,
            f"{direct_seconds:.4f}",
            f"{warm_seconds:.6f}",
            f"{warm_speedup:.0f}x speedup",
        ),
        (
            f"timeline x{len(snapshots)}",
            TIMELINE_DATASET,
            f"{reference_seconds:.4f}",
            f"{dynamic_seconds:.4f}",
            f"{timeline_speedup:.2f}x speedup",
        ),
    ]
    lines = format_table(
        ("measurement", "dataset", "baseline(s)", "engine(s)", "verdict"), rows
    )
    lines.append("")
    lines.append(
        f"gates: cold overhead < {MAX_COLD_OVERHEAD:.0%}; timeline "
        f">= {MIN_TIMELINE_SPEEDUP:.0f}x over {len(snapshots)} snapshots "
        f"at {TIMELINE_CHURN:.1%} churn (best-of-{REPEATS} where repeated)"
    )
    write_report("engine_overhead", lines)

    BENCH_JSON.write_text(
        json.dumps(
            {
                "benchmark": "engine_overhead",
                "description": (
                    "repro.engine dispatch/cache/dynamic-strategy costs: "
                    "cold engine vs direct call, warm version-keyed cache, "
                    "and a churn-snapshot timeline via backend='dynamic' "
                    "vs per-snapshot reference recompute"
                ),
                "command": (
                    "PYTHONPATH=src python -m pytest "
                    "benchmarks/bench_engine_overhead.py -q"
                ),
                "acceptance": {
                    "cold_overhead_max": MAX_COLD_OVERHEAD,
                    "cold_overhead_measured": round(cold_overhead, 4),
                    "timeline_min_speedup": MIN_TIMELINE_SPEEDUP,
                    "timeline_speedup_measured": round(timeline_speedup, 2),
                },
                "cold": {
                    "dataset": OVERHEAD_DATASET,
                    "direct_seconds": round(direct_seconds, 6),
                    "engine_seconds": round(engine_seconds, 6),
                },
                "warm_cache": {
                    "dataset": OVERHEAD_DATASET,
                    "hit_seconds": round(warm_seconds, 9),
                    "speedup": round(warm_speedup, 1),
                },
                "timeline": {
                    "dataset": TIMELINE_DATASET,
                    "snapshots": len(snapshots),
                    "churn_fraction": TIMELINE_CHURN,
                    "reference_seconds": round(reference_seconds, 6),
                    "dynamic_seconds": round(dynamic_seconds, 6),
                    "speedup": round(timeline_speedup, 2),
                    "dynamic_updates": counters.get("dynamic_updates", 0),
                    "dynamic_edges_applied": counters.get(
                        "dynamic_edges_applied", 0
                    ),
                },
            },
            indent=2,
        )
        + "\n",
        encoding="utf-8",
    )

    assert cold_overhead < MAX_COLD_OVERHEAD, (
        f"engine cold path is {cold_overhead:.1%} slower than the direct "
        f"call on {OVERHEAD_DATASET}; dispatch must stay < "
        f"{MAX_COLD_OVERHEAD:.0%}"
    )
    assert timeline_speedup >= MIN_TIMELINE_SPEEDUP, (
        f"dynamic timeline only {timeline_speedup:.2f}x faster than "
        f"per-snapshot recompute; must stay >= {MIN_TIMELINE_SPEEDUP:.0f}x"
    )
