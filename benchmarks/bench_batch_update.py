"""Batched maintenance — one affected-region pass vs per-op repairs.

Replays the PR 2 fuzz workloads (``triangle_bursts`` and ``churn``)
through the dynamic maintainer twice: once with the status-quo write
path (every op applied individually through the per-edge repair), and
once with the batched path end to end (chunks of ``batch_ops`` ops,
each :func:`~repro.testing.coalesce`-d and applied with the single
affected-region pass, ``strategy="batch"`` — coalescing cost included).
Final kappa maps are asserted bit-identical to each other and to a
fresh Algorithm 1 run.

Two artifacts are written:

* ``benchmarks/results/batch_update.txt`` — the human-readable table;
* ``BENCH_batch_update.json`` at the repo root — the machine-readable
  record CI uploads.

Acceptance gate (ISSUE 6): ``strategy="batch"`` must be >= 5x faster
than per-op application on both profiles at the gate batch size.  The
gate is single-core, so unlike the parallel backend's it is enforced
unconditionally.

Run stand-alone (no pytest) with ``python benchmarks/bench_batch_update.py
[--smoke]``; ``--smoke`` shrinks the workload and does one timing pass
instead of best-of-3.  The gate is still enforced in smoke mode — the
speedup only grows with workload size, so the smoke run is the harder
test.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from common import format_table, write_report

REPO_ROOT = Path(__file__).parent.parent
BENCH_JSON = REPO_ROOT / "BENCH_batch_update.json"

GATE_PROFILES = ("triangle_bursts", "churn")
FULL_OPS, SMOKE_OPS = 2000, 600
#: The gate batch size matches the service's edit-stream regime
#: (BENCH_service replays ~2.7k ops); the smaller size is recorded so
#: the crossover trajectory stays visible but is not gated — at 50 ops
#: per chunk the churn profile's win is real (~5x) yet too close to the
#: bar for a hard single-run assertion.
GATE_BATCH_OPS = 200
BATCH_SIZES = (50, 200)
MIN_SPEEDUP = 5.0
REPEATS = 3
SEED = 0


def _per_op_seconds(script):
    """The status-quo write path: every op applied individually."""
    from repro.core import DynamicTriangleKCore
    from repro.graph import Graph
    from repro.testing import expected_outcome

    maintainer = DynamicTriangleKCore(Graph(), copy=False)
    start = time.perf_counter()
    for op in script:
        if expected_outcome(maintainer.graph, op) != "ok":
            continue
        if op.kind == "add":
            maintainer.add_edge(op.u, op.v)
        elif op.kind == "remove":
            maintainer.remove_edge(op.u, op.v)
        elif op.kind == "add_vertex":
            maintainer.add_vertex(op.u)
        else:
            maintainer.remove_vertex(op.u)
    return maintainer, time.perf_counter() - start


def _batch_seconds(script, batch_ops):
    """The batched path end to end: coalesce each chunk, one region pass."""
    from repro.core import DynamicTriangleKCore
    from repro.graph import Graph
    from repro.testing import EditScript, apply_coalesced, coalesce

    maintainer = DynamicTriangleKCore(Graph(), copy=False)
    start = time.perf_counter()
    for begin in range(0, len(script), batch_ops):
        chunk = EditScript(ops=script.ops[begin:begin + batch_ops])
        co = coalesce(maintainer.graph, chunk)
        apply_coalesced(maintainer, co, strategy="batch")
    return maintainer, time.perf_counter() - start


def _best_of(fn, repeats):
    best = float("inf")
    result = None
    for _ in range(repeats):
        result, seconds = fn()
        best = min(best, seconds)
    return result, best


def _batch_update_report(ops, repeats=REPEATS):
    from repro.core import triangle_kcore_decomposition
    from repro.testing import generate

    json_rows = []
    table_rows = []
    gate_speedups = {}
    for profile in GATE_PROFILES:
        script = generate(profile, SEED, ops)
        per_op, per_op_seconds = _best_of(
            lambda: _per_op_seconds(script), repeats
        )
        reference = triangle_kcore_decomposition(per_op.graph).kappa
        assert per_op.kappa == reference, (
            f"per-op diverged from Algorithm 1 on {profile}"
        )
        for batch_ops in BATCH_SIZES:
            batch, batch_seconds = _best_of(
                lambda: _batch_seconds(script, batch_ops), repeats
            )
            assert per_op.kappa == batch.kappa, (
                f"batch diverged from per-op on {profile}"
            )
            assert per_op.graph == batch.graph
            speedup = per_op_seconds / max(batch_seconds, 1e-9)
            if batch_ops == GATE_BATCH_OPS:
                gate_speedups[profile] = round(speedup, 2)
            json_rows.append(
                {
                    "profile": profile,
                    "ops": ops,
                    "batch_ops": batch_ops,
                    "final_edges": per_op.graph.num_edges,
                    "per_op_seconds": round(per_op_seconds, 6),
                    "batch_seconds": round(batch_seconds, 6),
                    "speedup": round(speedup, 2),
                }
            )
            table_rows.append(
                (
                    profile,
                    ops,
                    batch_ops,
                    f"{per_op_seconds:.4f}",
                    f"{batch_seconds:.4f}",
                    f"{speedup:.1f}x",
                )
            )

    lines = format_table(
        ("profile", "ops", "batch", "per-op(s)", "batch(s)", "speedup"),
        table_rows,
    )
    lines.append("")
    lines.append(
        f"gate: batch >= {MIN_SPEEDUP}x over per-op at batch_ops="
        f"{GATE_BATCH_OPS} on both profiles (single-core, ENFORCED); "
        f"measured {gate_speedups}"
    )
    write_report("batch_update", lines)

    BENCH_JSON.write_text(
        json.dumps(
            {
                "benchmark": "batch_update",
                "description": (
                    "Dynamic maintenance write path: per-op incremental "
                    "repairs vs coalesce + one affected-region pass per "
                    "edit batch (wall clock, seconds)"
                ),
                "command": (
                    "PYTHONPATH=src python benchmarks/bench_batch_update.py"
                ),
                "acceptance": {
                    "profiles": list(GATE_PROFILES),
                    "batch_ops": GATE_BATCH_OPS,
                    "min_speedup": MIN_SPEEDUP,
                    "measured_speedups": gate_speedups,
                    "enforced": True,
                },
                "rows": json_rows,
            },
            indent=2,
        )
        + "\n",
        encoding="utf-8",
    )

    for profile, speedup in gate_speedups.items():
        assert speedup >= MIN_SPEEDUP, (
            f"batch only {speedup:.2f}x faster than per-op on {profile} "
            f"at batch_ops={GATE_BATCH_OPS}; the single affected-region "
            f"pass must stay >= {MIN_SPEEDUP}x"
        )
    return gate_speedups


def test_batch_update_report(benchmark):
    benchmark.pedantic(
        lambda: _batch_update_report(FULL_OPS), rounds=1, iterations=1
    )


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help=f"shorter workload ({SMOKE_OPS} ops instead of {FULL_OPS})",
    )
    args = parser.parse_args(argv)
    speedups = _batch_update_report(
        SMOKE_OPS if args.smoke else FULL_OPS,
        repeats=1 if args.smoke else REPEATS,
    )
    print(f"\nBENCH_batch_update.json written; gate speedups {speedups}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
