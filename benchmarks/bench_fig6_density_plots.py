"""Figure 6 — qualitative comparison of CSV and Triangle K-Core plots.

The paper shows side-by-side density plots and annotates regions as
similar (S) or phase-shifted (PS); the trends match even where the vertex
order shifts.  We quantify that: per-vertex height similarity plus plateau
profile agreement between the CSV plot and the Triangle K-Core plot, and
dump both SVGs for visual inspection.
"""

from __future__ import annotations

import pytest

from repro.analysis import plateau_profile
from repro.baselines import csv_co_clique_sizes
from repro.core import triangle_kcore_decomposition
from repro.viz import (
    density_plot,
    density_plot_from_scores,
    density_plot_svg,
    plot_similarity,
    save_svg,
    side_by_side_svg,
)

from common import CSV_CAPABLE, RESULTS_DIR, format_table, write_report

FIG6_DATASETS = sorted(CSV_CAPABLE)


@pytest.mark.parametrize("name", FIG6_DATASETS)
def test_bench_plot_construction(benchmark, dataset_loader, name):
    """Timing: building the Triangle K-Core density plot."""
    graph = dataset_loader(name).graph
    result = triangle_kcore_decomposition(graph)
    benchmark.pedantic(
        lambda: density_plot(graph, result), rounds=1, iterations=1
    )


def test_fig6_report(dataset_loader, benchmark):
    benchmark.pedantic(lambda: _fig6_report(dataset_loader), rounds=1, iterations=1)


def _fig6_report(dataset_loader):
    rows = []
    panels = []
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    for name in FIG6_DATASETS:
        graph = dataset_loader(name).graph
        result = triangle_kcore_decomposition(graph)
        ours = density_plot(graph, result, title=f"{name}: Triangle K-Core")
        csv_scores = csv_co_clique_sizes(graph)
        theirs = density_plot_from_scores(
            graph, csv_scores, title=f"{name}: CSV"
        )
        similarity = plot_similarity(ours, theirs)
        our_profile = plateau_profile(ours, min_height=4)[:5]
        csv_profile = plateau_profile(theirs, min_height=4)[:5]
        rows.append(
            (
                name,
                f"{similarity:.3f}",
                ours.max_height,
                theirs.max_height,
                str(our_profile),
                str(csv_profile),
            )
        )
        save_svg(density_plot_svg(ours), str(RESULTS_DIR / f"fig6_{name}_tkc.svg"))
        save_svg(
            density_plot_svg(theirs), str(RESULTS_DIR / f"fig6_{name}_csv.svg")
        )
        panels.extend([theirs, ours])
    lines = format_table(
        (
            "dataset", "similarity", "TKC max", "CSV max",
            "TKC plateaus (h,w)", "CSV plateaus (h,w)",
        ),
        rows,
    )
    lines.append("")
    lines.append(
        "shape check vs paper Fig 6: plots are near identical (similarity"
    )
    lines.append(
        "close to 1.0); kappa+2 upper-bounds the CSV clique estimate, so "
        "TKC max >= CSV max."
    )
    save_svg(
        side_by_side_svg(panels, columns=2),
        str(RESULTS_DIR / "fig6_grid.svg"),
    )
    write_report("fig6_density_plots", lines)

    for row in rows:
        assert float(row[1]) > 0.85, f"plots diverge on {row[0]}"
        assert row[2] >= row[3], f"CSV max exceeded kappa+2 on {row[0]}"
