"""Figure 7 — PPI case study: three circled cliques.

The paper reads three approximate cliques off the PPI density plot:
clique 1 (the DN-Graph of Wang et al.), clique 2 (an exact 10-vertex
clique) and clique 3 (10 vertices shown as 9 because one edge is missing).
We regenerate the plot, detect the plateaus, verify each planted structure
and dump the annotated SVG plus per-clique drawings.
"""

from __future__ import annotations

import pytest

from repro.analysis import clique_report, find_plateaus
from repro.core import triangle_kcore_decomposition
from repro.datasets import (
    CLIQUE1_PROTEINS,
    CLIQUE2_PROTEINS,
    CLIQUE3_MISSING_EDGE,
    CLIQUE3_PROTEINS,
)
from repro.viz import density_plot, density_plot_svg, graph_drawing_svg, save_svg

from common import RESULTS_DIR, format_table, write_report


@pytest.fixture(scope="module")
def ppi(dataset_loader):
    dataset = dataset_loader("ppi")
    result = triangle_kcore_decomposition(dataset.graph)
    plot = density_plot(dataset.graph, result, title="PPI clique distribution")
    return dataset, result, plot


def test_bench_ppi_decomposition(benchmark, dataset_loader):
    graph = dataset_loader("ppi").graph
    benchmark.pedantic(
        lambda: triangle_kcore_decomposition(graph), rounds=1, iterations=1
    )


def test_fig7_report(ppi, benchmark):
    benchmark.pedantic(lambda: _fig7_report(ppi), rounds=1, iterations=1)


def _fig7_report(ppi):
    dataset, result, plot = ppi
    rows = []
    heights = dict(zip(plot.order, plot.heights))
    for label, members in (
        ("clique 1 (Lsm module)", CLIQUE1_PROTEINS),
        ("clique 2 (exact 10-clique)", CLIQUE2_PROTEINS),
        ("clique 3 (missing APC4-CDC16)", CLIQUE3_PROTEINS),
    ):
        report = clique_report(dataset.graph, members)
        plot_height = max(heights[m] for m in members)
        rows.append(
            (
                label,
                len(members),
                plot_height,
                f"{report.density:.3f}",
                len(report.missing_edges),
            )
        )
        plot.add_marker(members, label=label)
        drawing = graph_drawing_svg(
            dataset.graph.subgraph(members),
            highlight_edges=[],
        )
        save_svg(drawing, str(RESULTS_DIR / f"fig7_{label.split()[1]}.svg"))
    save_svg(density_plot_svg(plot), str(RESULTS_DIR / "fig7_ppi_plot.svg"))

    lines = format_table(
        ("clique", "vertices", "plot height", "density", "missing edges"),
        rows,
    )
    lines.append("")
    lines.append(
        "shape check vs paper Fig 7: clique 2 reads as a 10-clique; clique"
    )
    lines.append(
        "3 reads as 9 because the APC4-CDC16 edge is absent; clique 1 is a"
    )
    lines.append("dense module surfaced the same way the DN-Graph paper found it.")
    write_report("fig7_ppi_cliques", lines)

    # The paper's concrete claims.
    assert rows[1][2] == 10  # clique 2 at height 10
    assert rows[2][2] == 9  # clique 3 shown as 9
    assert rows[2][4] == 1  # exactly one missing edge
    assert not dataset.graph.has_edge(*CLIQUE3_MISSING_EDGE)


def test_fig7_plateaus_surface_planted_structure(ppi, benchmark):
    benchmark.pedantic(lambda: _fig7_plateaus_surface_planted_structure(ppi), rounds=1, iterations=1)


def _fig7_plateaus_surface_planted_structure(ppi):
    dataset, result, plot = ppi
    plateaus = find_plateaus(plot, min_height=8)
    covered = set()
    for plateau in plateaus:
        covered |= set(plateau.vertices)
    for members in (CLIQUE1_PROTEINS, CLIQUE2_PROTEINS, CLIQUE3_PROTEINS):
        overlap = len(set(members) & covered)
        assert overlap >= len(members) - 1, members
