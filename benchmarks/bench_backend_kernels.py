"""Backend kernels — reference (dict) vs CSR (flat-array) speedups.

Times the static Triangle K-Core decomposition and triangle counting with
``backend="reference"`` and ``backend="csr"`` across the Table II sweep
datasets, asserting identical kappa maps along the way.  Two artifacts are
written:

* ``benchmarks/results/backend_kernels.txt`` — the human-readable table;
* ``BENCH_kernels.json`` at the repo root — the machine-readable perf
  trajectory baseline later perf PRs compare against.

Acceptance gate (ISSUE 1): the CSR backend must be >= 3x faster than the
reference on the largest synthetic Table II graph.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import pytest

from repro.core import triangle_kcore_decomposition
from repro.graph.triangles import count_triangles

from common import SWEEP_DATASETS, format_table, write_report

REPO_ROOT = Path(__file__).parent.parent
BENCH_JSON = REPO_ROOT / "BENCH_kernels.json"

#: The largest synthetic Table II graph — the acceptance-gate dataset.
LARGEST_DATASET = SWEEP_DATASETS[-1]
MIN_SPEEDUP_LARGEST = 3.0
REPEATS = 3


def _best_of(fn, repeats: int = REPEATS):
    """Run ``fn`` ``repeats`` times; return (last result, best seconds)."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return result, best


@pytest.mark.parametrize("backend", ["reference", "csr"])
@pytest.mark.parametrize("name", SWEEP_DATASETS)
def test_bench_backend(benchmark, dataset_loader, name, backend):
    """pytest-benchmark timing of Algorithm 1 per dataset and backend."""
    graph = dataset_loader(name).graph
    result = benchmark.pedantic(
        lambda: triangle_kcore_decomposition(graph, backend=backend),
        rounds=1,
        iterations=1,
    )
    assert result.max_kappa >= 0


def test_backend_kernels_report(dataset_loader, benchmark):
    benchmark.pedantic(
        lambda: _backend_kernels_report(dataset_loader), rounds=1, iterations=1
    )


def _backend_kernels_report(dataset_loader):
    rows = []
    json_rows = []
    for name in SWEEP_DATASETS:
        graph = dataset_loader(name).graph
        reference, ref_seconds = _best_of(
            lambda: triangle_kcore_decomposition(graph, backend="reference")
        )
        fast, csr_seconds = _best_of(
            lambda: triangle_kcore_decomposition(graph, backend="csr")
        )
        assert fast.kappa == reference.kappa, f"kappa mismatch on {name}"
        triangles = count_triangles(graph, backend="csr")
        speedup = ref_seconds / max(csr_seconds, 1e-9)
        rows.append(
            (
                name,
                graph.num_vertices,
                graph.num_edges,
                triangles,
                f"{ref_seconds:.4f}",
                f"{csr_seconds:.4f}",
                f"{speedup:.2f}x",
            )
        )
        json_rows.append(
            {
                "dataset": name,
                "vertices": graph.num_vertices,
                "edges": graph.num_edges,
                "triangles": triangles,
                "reference_seconds": round(ref_seconds, 6),
                "csr_seconds": round(csr_seconds, 6),
                "speedup": round(speedup, 2),
            }
        )

    lines = format_table(
        ("dataset", "|V|", "|E|", "|Tri|", "reference(s)", "csr(s)", "speedup"),
        rows,
    )
    lines.append("")
    lines.append(
        f"gate: csr >= {MIN_SPEEDUP_LARGEST:.0f}x on {LARGEST_DATASET} "
        f"(largest Table II graph); best-of-{REPEATS} wall clocks"
    )
    write_report("backend_kernels", lines)

    largest = next(r for r in json_rows if r["dataset"] == LARGEST_DATASET)
    BENCH_JSON.write_text(
        json.dumps(
            {
                "benchmark": "backend_kernels",
                "description": (
                    "Algorithm 1 static decomposition: dict-based reference "
                    "backend vs repro.fast CSR flat-array kernels "
                    f"(best-of-{REPEATS} wall clock, seconds)"
                ),
                "command": (
                    "PYTHONPATH=src python -m pytest "
                    "benchmarks/bench_backend_kernels.py -q"
                ),
                "acceptance": {
                    "dataset": LARGEST_DATASET,
                    "min_speedup": MIN_SPEEDUP_LARGEST,
                    "measured_speedup": largest["speedup"],
                },
                "rows": json_rows,
            },
            indent=2,
        )
        + "\n",
        encoding="utf-8",
    )

    assert largest["speedup"] >= MIN_SPEEDUP_LARGEST, (
        f"csr backend only {largest['speedup']:.2f}x faster than reference "
        f"on {LARGEST_DATASET}; the kernel layer must stay >= "
        f"{MIN_SPEEDUP_LARGEST:.0f}x"
    )
