"""Figure 12 — static Bridge Cliques between PPI complexes.

The paper defines an edge as "new" when it connects two different
complexes and runs the Bridge detector on the static PPI graph.  Findings:
bridge clique 1 joins PRE1 (20S proteasome) to the 19/22S regulator
complex; bridge cliques 2 and 3 join GLC7 and RNA14 to the mRNA cleavage
and polyadenylation specificity factor (CPF) complex, with heavy overlap.
"""

from __future__ import annotations

import pytest

from repro.datasets import COMPLEX_CPF
from repro.templates import BRIDGE, detect_template_cliques, labeling_from_partition
from repro.viz import density_plot_svg, graph_drawing_svg, save_svg

from common import RESULTS_DIR, format_table, write_report


@pytest.fixture(scope="module")
def detection(dataset_loader):
    dataset = dataset_loader("ppi")
    labeling = labeling_from_partition(dataset.graph, dataset.vertex_groups)
    return dataset, detect_template_cliques(dataset.graph, labeling, BRIDGE)


def test_bench_static_bridge_detection(benchmark, dataset_loader):
    dataset = dataset_loader("ppi")
    labeling = labeling_from_partition(dataset.graph, dataset.vertex_groups)
    benchmark.pedantic(
        lambda: detect_template_cliques(dataset.graph, labeling, BRIDGE),
        rounds=1,
        iterations=1,
    )


def test_fig12_report(detection, benchmark):
    benchmark.pedantic(lambda: _fig12_report(detection), rounds=1, iterations=1)


def _fig12_report(detection):
    dataset, result = detection
    rows = []
    found = {"PRE1": None, "GLC7": None, "RNA14": None}
    cliques = []
    for index, (kappa, vertices) in enumerate(result.densest_cliques()):
        if index >= 10:
            break
        cliques.append((kappa, vertices))
        bridges = sorted(v for v in found if v in vertices)
        for bridge_protein in bridges:
            if found[bridge_protein] is None:
                found[bridge_protein] = index + 1
        groups = sorted({dataset.vertex_groups[v] for v in vertices})
        rows.append(
            (
                index + 1,
                kappa + 2,
                ",".join(bridges) or "-",
                "; ".join(g[:28] for g in groups[:3]),
            )
        )

    plot = result.plot(title="Bridge Cliques between PPI complexes")
    save_svg(density_plot_svg(plot), str(RESULTS_DIR / "fig12_ppi_bridge.svg"))

    # Drawing of the PRE1 bridge region (the paper's Fig 12(b)).
    for kappa, vertices in cliques:
        if "PRE1" in vertices:
            region = dataset.graph.subgraph(vertices)
            inter = [
                (u, v)
                for u, v in region.edges()
                if dataset.vertex_groups[u] != dataset.vertex_groups[v]
            ]
            save_svg(
                graph_drawing_svg(region, highlight_edges=inter),
                str(RESULTS_DIR / "fig12_pre1_bridge.svg"),
            )
            break

    lines = format_table(
        ("rank", "~clique size", "bridge proteins", "complexes"), rows
    )
    lines.append("")
    lines.append(
        "shape check vs paper Fig 12: PRE1 bridges 20S proteasome <-> 19/22S"
    )
    lines.append(
        "regulator; GLC7 and RNA14 bridge into the CPF complex with heavy "
        "overlap."
    )
    write_report("fig12_ppi_bridge", lines)

    assert found["PRE1"] is not None
    assert found["GLC7"] is not None or found["RNA14"] is not None


def test_fig12_bridge_cliques_overlap(detection, benchmark):
    benchmark.pedantic(lambda: _fig12_bridge_cliques_overlap(detection), rounds=1, iterations=1)


def _fig12_bridge_cliques_overlap(detection):
    """Bridge cliques 2 and 3 share the CPF complex members (paper: 'a lot
    of overlap vertices, which indicate ... closely related in function')."""
    dataset, result = detection
    glc7_clique = rna14_clique = None
    for index, (kappa, vertices) in enumerate(result.densest_cliques()):
        if index >= 10:
            break
        if "GLC7" in vertices and glc7_clique is None:
            glc7_clique = vertices
        if "RNA14" in vertices and rna14_clique is None:
            rna14_clique = vertices
    assert glc7_clique and rna14_clique
    overlap = glc7_clique & rna14_clique
    assert len(overlap & set(COMPLEX_CPF)) >= 6
