"""Parallel backend — sharded enumeration vs the in-process CSR kernels.

Times the static decomposition with ``backend="csr"`` and
``backend="parallel"`` (2 and 4 workers, real process pools) on the
largest Table II sweep datasets, asserting bit-identical kappa maps and
processing orders along the way.  Two artifacts are written:

* ``benchmarks/results/parallel_backend.txt`` — the human-readable table;
* ``BENCH_parallel.json`` at the repo root — the machine-readable record
  CI uploads.

Acceptance gate (ISSUE 4): ``parallel`` with 4 workers must be >= 1.8x
faster than ``csr`` on the largest Table II graph.  The gate is only
*enforced* on hosts with at least 4 CPUs — on smaller machines (where a
4-worker pool cannot physically beat one core) the speedup is measured
and recorded with ``"enforced": false`` so the trajectory stays visible.

``--require-cpus N`` makes the skip loud instead of silent: on a host
with >= N CPUs the gate is enforced unconditionally; below N the run
exits with status 3 and records a machine-readable ``skip_reason`` in
``BENCH_parallel.json`` — so a CI leg that *intends* to exercise the
multi-core gate fails visibly when its runner is smaller than promised,
instead of green-washing an unexercised gate.

Run stand-alone (no pytest) with ``python benchmarks/bench_parallel_backend.py
[--smoke] [--require-cpus N]``; ``--smoke`` does one timing pass instead
of best-of-3.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from common import SWEEP_DATASETS, format_table, write_report

REPO_ROOT = Path(__file__).parent.parent
BENCH_JSON = REPO_ROOT / "BENCH_parallel.json"

#: The largest Table II stand-in — the acceptance-gate dataset.
GATE_DATASET = SWEEP_DATASETS[-1]
#: Datasets timed (largest two: pool overhead is invisible below ~10^4 edges).
BENCH_DATASETS = [SWEEP_DATASETS[3], GATE_DATASET]  # dblp, livejournal
GATE_WORKERS = 4
MIN_SPEEDUP = 1.8
REPEATS = 3


def _best_of(fn, repeats):
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return result, best


#: Exit status when --require-cpus is not met (distinct from test failure).
EXIT_SKIPPED = 3


def _parallel_report(get_dataset, repeats=REPEATS, require_cpus=None):
    from repro.core import triangle_kcore_decomposition
    from repro.fast import parallel_decomposition

    cpu_count = os.cpu_count() or 1
    skip_reason = None
    if require_cpus is not None:
        if cpu_count >= require_cpus:
            enforced = True
        else:
            enforced = False
            skip_reason = (
                f"gate skipped: host has {cpu_count} CPU(s) but "
                f"--require-cpus {require_cpus} was requested; run this leg "
                f"on a >= {require_cpus}-core machine to exercise the gate"
            )
    else:
        enforced = cpu_count >= GATE_WORKERS
    rows = []
    json_rows = []
    for name in BENCH_DATASETS:
        graph = get_dataset(name).graph
        csr, csr_seconds = _best_of(
            lambda: triangle_kcore_decomposition(graph, backend="csr"),
            repeats,
        )
        row = {
            "dataset": name,
            "vertices": graph.num_vertices,
            "edges": graph.num_edges,
            "csr_seconds": round(csr_seconds, 6),
        }
        speedups = {}
        for workers in (2, GATE_WORKERS):
            par, par_seconds = _best_of(
                lambda: parallel_decomposition(graph, workers=workers),
                repeats,
            )
            assert par.kappa == csr.kappa, f"kappa mismatch on {name}"
            assert par.processing_order == csr.processing_order, (
                f"processing order mismatch on {name}"
            )
            speedups[workers] = csr_seconds / max(par_seconds, 1e-9)
            row[f"parallel{workers}_seconds"] = round(par_seconds, 6)
            row[f"speedup{workers}"] = round(speedups[workers], 2)
        json_rows.append(row)
        rows.append(
            (
                name,
                graph.num_vertices,
                graph.num_edges,
                f"{csr_seconds:.4f}",
                f"{row['parallel2_seconds']:.4f}",
                f"{speedups[2]:.2f}x",
                f"{row[f'parallel{GATE_WORKERS}_seconds']:.4f}",
                f"{speedups[GATE_WORKERS]:.2f}x",
            )
        )

    lines = format_table(
        (
            "dataset", "|V|", "|E|", "csr(s)",
            "par@2(s)", "x2", f"par@{GATE_WORKERS}(s)", f"x{GATE_WORKERS}",
        ),
        rows,
    )
    lines.append("")
    if enforced:
        gate_state = "ENFORCED"
    elif skip_reason is not None:
        gate_state = f"SKIPPED (--require-cpus {require_cpus} not met)"
    else:
        gate_state = f"recorded only (needs >= {GATE_WORKERS} CPUs)"
    lines.append(
        f"gate: parallel@{GATE_WORKERS} >= {MIN_SPEEDUP}x over csr on "
        f"{GATE_DATASET}; host has {cpu_count} CPU(s), gate {gate_state}; "
        f"best-of-{repeats} wall clocks"
    )
    write_report("parallel_backend", lines)

    gate_row = next(r for r in json_rows if r["dataset"] == GATE_DATASET)
    measured = gate_row[f"speedup{GATE_WORKERS}"]
    BENCH_JSON.write_text(
        json.dumps(
            {
                "benchmark": "parallel_backend",
                "description": (
                    "Algorithm 1 static decomposition: in-process CSR "
                    "kernels vs process-parallel sharded enumeration "
                    f"(best-of-{repeats} wall clock, seconds)"
                ),
                "command": (
                    "PYTHONPATH=src python benchmarks/"
                    "bench_parallel_backend.py"
                ),
                "acceptance": {
                    "dataset": GATE_DATASET,
                    "workers": GATE_WORKERS,
                    "min_speedup": MIN_SPEEDUP,
                    "measured_speedup": measured,
                    "enforced": enforced,
                    "cpu_count": cpu_count,
                    "require_cpus": require_cpus,
                    "skip_reason": skip_reason,
                },
                "rows": json_rows,
            },
            indent=2,
        )
        + "\n",
        encoding="utf-8",
    )

    if enforced:
        assert measured >= MIN_SPEEDUP, (
            f"parallel backend only {measured:.2f}x faster than csr at "
            f"{GATE_WORKERS} workers on {GATE_DATASET}; the sharded "
            f"enumeration must stay >= {MIN_SPEEDUP}x on >= "
            f"{GATE_WORKERS}-CPU hosts"
        )
    return measured, skip_reason


def test_parallel_backend_report(dataset_loader, benchmark):
    benchmark.pedantic(
        lambda: _parallel_report(dataset_loader), rounds=1, iterations=1
    )


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="single timing pass per cell instead of best-of-3",
    )
    parser.add_argument(
        "--require-cpus",
        type=int,
        default=None,
        metavar="N",
        help="enforce the speedup gate when the host has >= N CPUs; below "
        "N, exit with status 3 and record a skip_reason in "
        "BENCH_parallel.json instead of silently not enforcing",
    )
    args = parser.parse_args(argv)

    from repro.datasets import load

    cache = {}

    def get(name):
        if name not in cache:
            cache[name] = load(name)
        return cache[name]

    measured, skip_reason = _parallel_report(
        get,
        repeats=1 if args.smoke else REPEATS,
        require_cpus=args.require_cpus,
    )
    print(f"\nBENCH_parallel.json written; gate speedup {measured:.2f}x")
    if skip_reason is not None:
        print(skip_reason)
        return EXIT_SKIPPED
    return 0


if __name__ == "__main__":
    sys.exit(main())
