"""Ablation — community search: index vs one-shot BFS; store-backed updates.

Two practical engineering questions downstream users ask:

* when is building the :class:`~repro.core.community.CommunityIndex` worth
  it over per-query BFS?  (answer: a few dozen queries);
* what does the stored-triangle mode buy the dynamic maintainer?
  (paper §IV-A / appendix trade-off, measured).
"""

from __future__ import annotations

import random
import time

from repro.core import (
    CommunityIndex,
    DynamicTriangleKCore,
    community_of_vertex,
    triangle_kcore_decomposition,
)
from repro.graph import random_edge_sample, random_non_edges

from common import format_table, timed, write_report

DATASET = "ppi"
QUERY_COUNT = 200


def test_bench_community_index_build(benchmark, dataset_loader):
    graph = dataset_loader(DATASET).graph
    result = triangle_kcore_decomposition(graph)
    benchmark.pedantic(
        lambda: CommunityIndex(graph, result), rounds=1, iterations=1
    )


def test_bench_community_queries_via_index(benchmark, dataset_loader):
    graph = dataset_loader(DATASET).graph
    index = CommunityIndex(graph)
    vertices = sorted(graph.vertices(), key=repr)[:QUERY_COUNT]

    def run():
        for vertex in vertices:
            index.community_of_vertex(vertex)

    benchmark.pedantic(run, rounds=1, iterations=1)


def test_ablation_community_report(dataset_loader, benchmark):
    benchmark.pedantic(
        lambda: _ablation_community_report(dataset_loader), rounds=1, iterations=1
    )


def _ablation_community_report(dataset_loader):
    graph = dataset_loader(DATASET).graph
    result = triangle_kcore_decomposition(graph)
    rng = random.Random(17)
    vertices = rng.sample(sorted(graph.vertices(), key=repr), QUERY_COUNT)

    index, build_seconds = timed(lambda: CommunityIndex(graph, result))

    start = time.perf_counter()
    via_index = [index.community_of_vertex(v) for v in vertices]
    index_query_seconds = time.perf_counter() - start

    start = time.perf_counter()
    via_bfs = [community_of_vertex(graph, v, result=result) for v in vertices]
    bfs_seconds = time.perf_counter() - start

    assert via_index == via_bfs, "index disagrees with one-shot BFS"

    per_bfs = bfs_seconds / QUERY_COUNT
    breakeven = (
        build_seconds / max(per_bfs - index_query_seconds / QUERY_COUNT, 1e-9)
    )
    lines = format_table(
        ("strategy", "build(s)", f"{QUERY_COUNT} queries(s)"),
        [
            ("one-shot BFS", "0.000", f"{bfs_seconds:.4f}"),
            ("CommunityIndex", f"{build_seconds:.4f}", f"{index_query_seconds:.4f}"),
        ],
    )
    lines.append("")
    lines.append(f"index pays for itself after ~{breakeven:.0f} vertex queries")
    write_report("ablation_community", lines)


def test_ablation_store_mode_report(dataset_loader, benchmark):
    benchmark.pedantic(
        lambda: _ablation_store_mode_report(dataset_loader), rounds=1, iterations=1
    )


def _ablation_store_mode_report(dataset_loader):
    rows = []
    for name in ("ppi", "flickr"):
        graph = dataset_loader(name).graph
        removed = random_edge_sample(graph, 0.005, seed=21)
        added = random_non_edges(
            graph, len(removed), seed=22, triangle_closing=True
        )
        timings = {}
        kappas = {}
        for store in (False, True):
            maintainer = DynamicTriangleKCore(graph, store_triangles=store)
            start = time.perf_counter()
            maintainer.apply(added=added, removed=removed)
            timings[store] = time.perf_counter() - start
            kappas[store] = dict(maintainer.kappa)
        assert kappas[False] == kappas[True], name
        rows.append(
            (
                name,
                len(added) + len(removed),
                f"{timings[False]:.4f}",
                f"{timings[True]:.4f}",
            )
        )
    lines = format_table(
        ("dataset", "edges changed", "recompute-apexes(s)", "stored-apexes(s)"),
        rows,
    )
    lines.append("")
    lines.append(
        "the stored-triangle index (paper SIV-A trade-off) removes the"
    )
    lines.append(
        "common-neighbor intersections from the update cascades at O(|Tri|)"
    )
    lines.append("memory.")
    write_report("ablation_store_mode", lines)
