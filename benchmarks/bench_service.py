"""Closed-loop load generator for the Triangle K-Core query service.

Boots a real in-process server (:class:`repro.service.BackgroundServer`)
on the dblp fixture and drives it over loopback HTTP with 1, 8 and 64
concurrent closed-loop clients at a 90/10 read/write mix — reads are
``GET /kappa`` on real dblp edges, writes are small ``POST /edits``
batches toggling synthetic edges (each client owns a private vertex pool
so batches never conflict).  Client-side wall-clock latency of every
exchange feeds exact percentiles.  Two artifacts are written:

* ``benchmarks/results/service.txt`` — the human-readable table;
* ``BENCH_service.json`` at the repo root — the machine-readable record
  CI uploads.

Acceptance gate: sustained read throughput must reach >= 500 requests/
second at some concurrency level, with the p99 read latency recorded
alongside it.

Run stand-alone (no pytest) with ``python benchmarks/bench_service.py
[--smoke]``; ``--smoke`` shortens each phase for CI smoke runs.
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import threading
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from common import format_table, write_report

REPO_ROOT = Path(__file__).parent.parent
BENCH_JSON = REPO_ROOT / "BENCH_service.json"

DATASET = "dblp"
CLIENT_COUNTS = (1, 8, 64)
WRITE_FRACTION = 0.10
PHASE_SECONDS = 5.0
SMOKE_SECONDS = 1.5
MIN_READ_RPS = 500.0
#: Edits per write batch (small live batches, the common ingestion shape).
WRITE_BATCH_OPS = 2


def _percentile_ms(samples, fraction):
    if not samples:
        return 0.0
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(fraction * len(ordered)))
    return round(ordered[index] * 1000.0, 3)


class _ClientLoop(threading.Thread):
    """One closed-loop client: issue, wait, repeat until the deadline."""

    def __init__(self, port, index, deadline, read_edges, write_fraction):
        super().__init__(name=f"bench-client-{index}", daemon=True)
        self.port = port
        self.index = index
        self.deadline = deadline
        self.read_edges = read_edges
        self.write_fraction = write_fraction
        self.reads = 0
        self.writes = 0
        self.errors = 0
        self.read_latencies = []
        self.write_latencies = []
        self.last_version = 0

    def run(self):
        from repro.service import ServiceClient, ServiceClientError

        rng = random.Random(f"service-bench:{self.index}")
        # Private synthetic vertex pool: edits never touch dblp structure
        # another client is reading, and never collide across clients.
        base = 10_000_000 + self.index * 1000
        pool = list(range(base, base + 16))
        shadow = set()
        with ServiceClient("127.0.0.1", self.port, timeout=60) as client:
            while time.perf_counter() < self.deadline:
                try:
                    if rng.random() < self.write_fraction:
                        ops = []
                        for _ in range(WRITE_BATCH_OPS):
                            u, v = rng.sample(pool, 2)
                            key = (min(u, v), max(u, v))
                            if key in shadow:
                                ops.append(["remove", u, v])
                                shadow.discard(key)
                            else:
                                ops.append(["add", u, v])
                                shadow.add(key)
                        start = time.perf_counter()
                        outcome = client.edits(ops)
                        self.write_latencies.append(
                            time.perf_counter() - start
                        )
                        self.writes += 1
                        self.last_version = outcome.version
                    else:
                        u, v = self.read_edges[
                            rng.randrange(len(self.read_edges))
                        ]
                        start = time.perf_counter()
                        answer = client.kappa(u, v)
                        self.read_latencies.append(
                            time.perf_counter() - start
                        )
                        self.reads += 1
                        self.last_version = answer.version
                except ServiceClientError:
                    self.errors += 1


def _run_phase(port, clients, seconds, read_edges, write_fraction):
    deadline = time.perf_counter() + seconds
    loops = [
        _ClientLoop(port, index, deadline, read_edges, write_fraction)
        for index in range(clients)
    ]
    start = time.perf_counter()
    for loop in loops:
        loop.start()
    for loop in loops:
        loop.join(timeout=seconds + 120)
    elapsed = time.perf_counter() - start
    reads = sum(l.reads for l in loops)
    writes = sum(l.writes for l in loops)
    read_latencies = [s for l in loops for s in l.read_latencies]
    write_latencies = [s for l in loops for s in l.write_latencies]
    return {
        "clients": clients,
        "seconds": round(elapsed, 3),
        "reads": reads,
        "writes": writes,
        "errors": sum(l.errors for l in loops),
        "rps": round((reads + writes) / elapsed, 1),
        "read_rps": round(reads / elapsed, 1),
        "read_p50_ms": _percentile_ms(read_latencies, 0.50),
        "read_p95_ms": _percentile_ms(read_latencies, 0.95),
        "read_p99_ms": _percentile_ms(read_latencies, 0.99),
        "write_p99_ms": _percentile_ms(write_latencies, 0.99),
        "final_version": max((l.last_version for l in loops), default=0),
    }


def _service_report(phase_seconds=PHASE_SECONDS):
    from repro.datasets import load
    from repro.service import BackgroundServer, ServiceClient

    graph = load(DATASET).graph
    read_edges = sorted(graph.edges(), key=repr)[:4000]
    phases = []
    with BackgroundServer(
        graph,
        # Headroom for 64 closed-loop clients; no artificial rate limit —
        # the bench measures capacity, not the limiter.
        max_queue=256,
        request_timeout=None,
        idle_timeout=300.0,
    ) as server:
        for clients in CLIENT_COUNTS:
            phases.append(
                _run_phase(
                    server.port,
                    clients,
                    phase_seconds,
                    read_edges,
                    WRITE_FRACTION,
                )
            )
        with ServiceClient("127.0.0.1", server.port) as client:
            stats = client.stats()["service"]

    rows = [
        (
            p["clients"],
            f"{p['seconds']:.1f}",
            p["reads"],
            p["writes"],
            p["errors"],
            f"{p['rps']:.0f}",
            f"{p['read_rps']:.0f}",
            f"{p['read_p50_ms']:.2f}",
            f"{p['read_p95_ms']:.2f}",
            f"{p['read_p99_ms']:.2f}",
            f"{p['write_p99_ms']:.2f}",
        )
        for p in phases
    ]
    lines = format_table(
        (
            "clients", "secs", "reads", "writes", "errors", "rps",
            "read rps", "p50ms", "p95ms", "p99ms", "w-p99ms",
        ),
        rows,
    )
    best = max(phases, key=lambda p: p["read_rps"])
    lines.append("")
    lines.append(
        f"dataset {DATASET}: |V|={graph.num_vertices} "
        f"|E|={graph.num_edges}; {WRITE_FRACTION:.0%} writes "
        f"({WRITE_BATCH_OPS} ops/batch); closed loop over loopback HTTP"
    )
    lines.append(
        f"gate: sustained read throughput >= {MIN_READ_RPS:.0f} req/s; "
        f"best {best['read_rps']:.0f} req/s at {best['clients']} client(s) "
        f"(read p99 {best['read_p99_ms']:.2f} ms)"
    )
    write_report("service", lines)

    BENCH_JSON.write_text(
        json.dumps(
            {
                "benchmark": "service",
                "description": (
                    "Long-lived query service under closed-loop load: "
                    f"{WRITE_FRACTION:.0%} POST /edits, rest GET /kappa, "
                    f"on {DATASET} over loopback HTTP"
                ),
                "command": "PYTHONPATH=src python benchmarks/bench_service.py",
                "dataset": {
                    "name": DATASET,
                    "vertices": graph.num_vertices,
                    "edges": graph.num_edges,
                },
                "acceptance": {
                    "min_read_rps": MIN_READ_RPS,
                    "measured_read_rps": best["read_rps"],
                    "at_clients": best["clients"],
                    "read_p99_ms": best["read_p99_ms"],
                },
                "phases": phases,
                "server_stats": stats,
            },
            indent=2,
        )
        + "\n",
        encoding="utf-8",
    )

    assert best["read_rps"] >= MIN_READ_RPS, (
        f"read throughput only {best['read_rps']:.0f} req/s (best phase); "
        f"the service must sustain >= {MIN_READ_RPS:.0f} req/s on {DATASET}"
    )
    total_errors = sum(p["errors"] for p in phases)
    assert total_errors == 0, f"{total_errors} client-visible errors"
    return best


def test_service_report(benchmark):
    # Short phases under pytest-benchmark: `make bench` regenerates the
    # artifacts without a 15-second wall-clock tax on the whole sweep.
    benchmark.pedantic(
        lambda: _service_report(phase_seconds=SMOKE_SECONDS),
        rounds=1,
        iterations=1,
    )


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help=f"short {SMOKE_SECONDS:.1f}s phases instead of "
        f"{PHASE_SECONDS:.0f}s (CI smoke run)",
    )
    args = parser.parse_args(argv)
    best = _service_report(
        phase_seconds=SMOKE_SECONDS if args.smoke else PHASE_SECONDS
    )
    print(
        f"\nBENCH_service.json written; best read throughput "
        f"{best['read_rps']:.0f} req/s (p99 {best['read_p99_ms']:.2f} ms)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
