"""Ablation — top-down maximal-core search vs full decomposition.

``max_triangle_kcore`` binary-searches the densest level with vertex-core
pruned erosions.  It wins when the densest structure sits far above the
bulk of the graph (needle-in-haystack: planted cliques, PPI complexes) and
loses when density is uniformly shallow (the erosions then re-touch most
edges per probe) — both regimes are measured so users know which they are
in.
"""

from __future__ import annotations

from repro.core import max_triangle_kcore, triangle_kcore_decomposition

from common import format_table, timed, write_report

DATASETS = ["ppi", "stocks", "astro", "livejournal"]


def test_bench_max_triangle_kcore(benchmark, dataset_loader):
    graph = dataset_loader("ppi").graph
    benchmark.pedantic(lambda: max_triangle_kcore(graph), rounds=1, iterations=1)


def test_ablation_maxcore_report(dataset_loader, benchmark):
    benchmark.pedantic(
        lambda: _ablation_maxcore_report(dataset_loader), rounds=1, iterations=1
    )


def _ablation_maxcore_report(dataset_loader):
    rows = []
    for name in DATASETS:
        graph = dataset_loader(name).graph
        (k, sub), topdown_seconds = timed(lambda: max_triangle_kcore(graph))
        result, full_seconds = timed(lambda: triangle_kcore_decomposition(graph))
        assert k == result.max_kappa, name
        rows.append(
            (
                name,
                graph.num_edges,
                k,
                sub.num_vertices,
                f"{topdown_seconds:.4f}",
                f"{full_seconds:.4f}",
                f"{full_seconds / max(topdown_seconds, 1e-9):.1f}x",
            )
        )
    lines = format_table(
        (
            "dataset", "|E|", "k_max", "core |V|", "top-down(s)", "full(s)",
            "speedup",
        ),
        rows,
    )
    lines.append("")
    lines.append(
        "top-down wins when k_max is far above the bulk density (ppi,"
    )
    lines.append(
        "stocks); on uniformly shallow graphs (livejournal stand-in, k_max"
    )
    lines.append("~3) the probes re-touch most edges and full peeling wins.")
    write_report("ablation_maxcore", lines)
