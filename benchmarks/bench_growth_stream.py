"""Extension bench — dynamic maintenance over a forest-fire growth stream.

Table III uses random churn on a fixed graph; real evolving networks
*grow* (the paper's related work [13]).  This bench replays a forest-fire
growth process through the incremental maintainer, snapshot by snapshot,
against recompute-per-snapshot — the workload an online monitoring system
would actually run.
"""

from __future__ import annotations

import time

from repro.core import DynamicTriangleKCore, triangle_kcore_decomposition
from repro.graph import SnapshotStream, growth_snapshots
from repro.graph.io import graph_diff

from common import format_table, write_report

VERTICES = 4000
SNAPSHOTS = 16


def _stream() -> SnapshotStream:
    return SnapshotStream(
        growth_snapshots(VERTICES, SNAPSHOTS, p_forward=0.4, seed=13)
    )


def test_bench_growth_replay(benchmark):
    stream = _stream()

    def run():
        maintainer = DynamicTriangleKCore(stream[0])
        for index in range(1, len(stream)):
            added, removed = graph_diff(stream[index - 1], stream[index])
            for vertex in stream[index].vertices():
                if not maintainer.graph.has_vertex(vertex):
                    maintainer.add_vertex(vertex)
            maintainer.apply(added=added, removed=removed)
        return maintainer

    benchmark.pedantic(run, rounds=1, iterations=1)


def test_growth_stream_report(benchmark):
    benchmark.pedantic(_growth_stream_report, rounds=1, iterations=1)


def _growth_stream_report():
    stream = _stream()
    rows = []
    maintainer = DynamicTriangleKCore(stream[0])
    for index in range(1, len(stream)):
        added, removed = graph_diff(stream[index - 1], stream[index])
        for vertex in stream[index].vertices():
            if not maintainer.graph.has_vertex(vertex):
                maintainer.add_vertex(vertex)
        start = time.perf_counter()
        maintainer.apply(added=added, removed=removed)
        update_seconds = time.perf_counter() - start

        start = time.perf_counter()
        fresh = triangle_kcore_decomposition(stream[index])
        recompute_seconds = time.perf_counter() - start
        assert maintainer.kappa == fresh.kappa, index

        rows.append(
            (
                f"t{index}",
                stream[index].num_edges,
                len(added),
                f"{recompute_seconds:.4f}",
                f"{update_seconds:.4f}",
                f"{recompute_seconds / max(update_seconds, 1e-9):.1f}x",
            )
        )
    lines = format_table(
        ("snapshot", "|E|", "new edges", "recompute(s)", "update(s)", "speedup"),
        rows,
    )
    lines.append("")
    lines.append(
        "growth workload: each snapshot adds a batch of forest-fire edges; "
        "the maintainer's state is verified against a fresh Algorithm 1 "
        "run at every step.  Early snapshots churn ~1/16 of all edges at "
        "once (near the incremental/recompute crossover); as the graph "
        "grows, the same absolute batch is relatively smaller and the "
        "incremental path pulls ahead."
    )
    write_report("growth_stream", lines)
