"""Complexity verification — Algorithm 1 is linear in triangles.

The paper claims "the complexity of this algorithm is linear in the number
of triangles in the graph (so it is very fast for sparse graphs)".  This
bench measures runtime across a geometric size sweep of one generator
family and fits the log-log slope of runtime against ``|E| + |Tri|``: a
slope near 1 confirms the linear scaling (pure-Python constants aside).
"""

from __future__ import annotations

import math

from repro.core import triangle_kcore_decomposition
from repro.graph import count_triangles, powerlaw_cluster

from common import format_table, timed, write_report

SIZES = (1000, 2000, 4000, 8000, 16000)


def test_bench_scaling_largest(benchmark):
    graph = powerlaw_cluster(SIZES[-1], 4, 0.4, seed=5)
    benchmark.pedantic(
        lambda: triangle_kcore_decomposition(graph), rounds=1, iterations=1
    )


def test_scaling_report(benchmark):
    benchmark.pedantic(_scaling_report, rounds=1, iterations=1)


def _scaling_report():
    rows = []
    points = []
    for n in SIZES:
        graph = powerlaw_cluster(n, 4, 0.4, seed=5)
        triangles = count_triangles(graph)
        # Median of 3 runs to tame timer noise on the small sizes.
        samples = sorted(
            timed(lambda: triangle_kcore_decomposition(graph))[1]
            for _ in range(3)
        )
        seconds = samples[1]
        work = graph.num_edges + triangles
        points.append((math.log(work), math.log(seconds)))
        rows.append(
            (
                n,
                graph.num_edges,
                triangles,
                f"{seconds:.4f}",
                f"{seconds / work * 1e6:.2f}",
            )
        )

    # Least-squares slope of log(time) vs log(|E| + |Tri|).
    mean_x = sum(x for x, _ in points) / len(points)
    mean_y = sum(y for _, y in points) / len(points)
    slope = sum((x - mean_x) * (y - mean_y) for x, y in points) / sum(
        (x - mean_x) ** 2 for x, _ in points
    )

    lines = format_table(
        ("|V|", "|E|", "|Tri|", "seconds", "us per (edge+triangle)"),
        rows,
    )
    lines.append("")
    lines.append(f"log-log slope of time vs (|E| + |Tri|): {slope:.2f}")
    lines.append(
        "shape check vs paper SIV-A: slope ~1.0 confirms the linear-in-"
        "triangles complexity claim; the per-unit cost stays flat across "
        "a 16x size sweep."
    )
    write_report("scaling", lines)

    assert 0.7 <= slope <= 1.35, f"non-linear scaling: slope {slope:.2f}"