"""Complexity verification — Algorithm 1 is linear in triangles.

The paper claims "the complexity of this algorithm is linear in the number
of triangles in the graph (so it is very fast for sparse graphs)".  This
bench measures runtime across a geometric size sweep of one generator
family and fits the log-log slope of runtime against ``|E| + |Tri|``: a
slope near 1 confirms the linear scaling (pure-Python constants aside).

Run standalone (``make bench-external``) this module also exercises the
out-of-core tier: it streams an R-MAT edge sample roughly 10x the
livejournal stand-in's arc budget straight into :func:`repro.fast.spill_edges`
(no in-RAM graph is ever built), decomposes the spill under a capped
memory budget, and records the peak-RSS delta against the cap in
``BENCH_external.json`` at the repo root.  On hosts that can measure RSS
(stdlib ``resource``) and run the vectorized kernels the cap is a hard
gate (non-zero exit on breach); elsewhere the run is recorded unenforced
with a ``skip_reason``.
"""

from __future__ import annotations

import math
import sys
from pathlib import Path

from repro.core import triangle_kcore_decomposition
from repro.graph import count_triangles, powerlaw_cluster

from common import format_table, timed, write_report

SIZES = (1000, 2000, 4000, 8000, 16000)

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_JSON = REPO_ROOT / "BENCH_external.json"

#: The livejournal stand-in is ``rmat(14, 6)`` — 6 * 2**14 arc samples.
LIVEJOURNAL_STANDIN_ARCS = 6 * (1 << 14)


def test_bench_scaling_largest(benchmark):
    graph = powerlaw_cluster(SIZES[-1], 4, 0.4, seed=5)
    benchmark.pedantic(
        lambda: triangle_kcore_decomposition(graph), rounds=1, iterations=1
    )


def test_scaling_report(benchmark):
    benchmark.pedantic(_scaling_report, rounds=1, iterations=1)


def _scaling_report():
    rows = []
    points = []
    for n in SIZES:
        graph = powerlaw_cluster(n, 4, 0.4, seed=5)
        triangles = count_triangles(graph)
        # Median of 3 runs to tame timer noise on the small sizes.
        samples = sorted(
            timed(lambda: triangle_kcore_decomposition(graph))[1]
            for _ in range(3)
        )
        seconds = samples[1]
        work = graph.num_edges + triangles
        points.append((math.log(work), math.log(seconds)))
        rows.append(
            (
                n,
                graph.num_edges,
                triangles,
                f"{seconds:.4f}",
                f"{seconds / work * 1e6:.2f}",
            )
        )

    # Least-squares slope of log(time) vs log(|E| + |Tri|).
    mean_x = sum(x for x, _ in points) / len(points)
    mean_y = sum(y for _, y in points) / len(points)
    slope = sum((x - mean_x) * (y - mean_y) for x, y in points) / sum(
        (x - mean_x) ** 2 for x, _ in points
    )

    lines = format_table(
        ("|V|", "|E|", "|Tri|", "seconds", "us per (edge+triangle)"),
        rows,
    )
    lines.append("")
    lines.append(f"log-log slope of time vs (|E| + |Tri|): {slope:.2f}")
    lines.append(
        "shape check vs paper SIV-A: slope ~1.0 confirms the linear-in-"
        "triangles complexity claim; the per-unit cost stays flat across "
        "a 16x size sweep."
    )
    write_report("scaling", lines)

    assert 0.7 <= slope <= 1.35, f"non-linear scaling: slope {slope:.2f}"


# --------------------------------------------------------------------- #
# out-of-core bench (standalone: `make bench-external`)
# --------------------------------------------------------------------- #


def stream_rmat_arcs(scale, edge_factor, *, a=0.45, b=0.1833, c=0.1833,
                     seed=73, batch=1 << 15):
    """Yield R-MAT arc samples ``(u, v)`` without ever building a graph.

    Same quadrant-descent recurrence (and livejournal stand-in skew
    parameters) as :func:`repro.graph.generators.rmat`, but emitted as a
    flat stream: dedup, self-loop filtering, and canonicalization are the
    spill builder's job, so the generator's memory footprint is one batch
    of samples regardless of scale.  Falls back to a scalar walk when
    numpy is unavailable.
    """
    total = edge_factor * (1 << scale)
    try:
        import numpy as np
    except ImportError:
        np = None
    if np is None:
        import random

        rng = random.Random(seed)
        thresholds = (a, a + b, a + b + c)
        for _ in range(total):
            u = v = 0
            for _bit in range(scale):
                draw = rng.random()
                quadrant = sum(draw >= t for t in thresholds)
                u = (u << 1) | ((quadrant >> 1) & 1)
                v = (v << 1) | (quadrant & 1)
            yield u, v
        return
    rng = np.random.default_rng(seed)
    thresholds = np.array([a, a + b, a + b + c])
    weights = 1 << np.arange(scale - 1, -1, -1)
    emitted = 0
    while emitted < total:
        size = min(batch, total - emitted)
        quadrant = np.searchsorted(thresholds, rng.random((size, scale)))
        us = (((quadrant >> 1) & 1) * weights).sum(axis=1)
        vs = ((quadrant & 1) * weights).sum(axis=1)
        emitted += size
        yield from zip(us.tolist(), vs.tolist())


def _maxrss_bytes():
    """Peak RSS in bytes, or None where it cannot be measured.

    Prefers ``VmHWM`` from ``/proc/self/status``: unlike ``ru_maxrss``
    (which survives execve on Linux, so a process spawned by a large
    parent starts with the parent's high-water mark), it belongs to this
    process's own address space.
    """
    try:
        with open("/proc/self/status") as fh:
            for line in fh:
                if line.startswith("VmHWM:"):
                    return int(line.split()[1]) * 1024
    except OSError:
        pass
    try:
        import resource
    except ImportError:
        return None
    value = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    return int(value) if sys.platform == "darwin" else int(value) * 1024


def run_external_bench(*, scale, edge_factor, budget, spill_dir=None):
    """Stream -> spill -> decompose under ``budget``; return the record."""
    import json
    import shutil
    import tempfile

    from repro.fast.external import decompose_spill, spill_edges

    try:
        import numpy  # noqa: F401
        have_numpy = True
    except ImportError:
        have_numpy = False

    num_vertices = 1 << scale
    arcs = edge_factor * num_vertices
    record = {
        "dataset": f"rmat-{scale}-{edge_factor} (livejournal stand-in skew)",
        "arcs_streamed": arcs,
        "target_arc_ratio": round(arcs / LIVEJOURNAL_STANDIN_ARCS, 2),
        "budget_bytes": budget,
        "enforced": False,
        "skip_reason": None,
    }
    baseline = _maxrss_bytes()
    owns_dir = spill_dir is None
    spill = spill_dir or tempfile.mkdtemp(prefix="repro-bench-spill-")
    try:
        ext = spill_edges(
            stream_rmat_arcs(scale, edge_factor),
            num_vertices,
            spill,
            memory_budget=budget,
        )
        try:
            _, seconds = timed(
                lambda: decompose_spill(
                    ext, memory_budget=budget, decode=False
                )
            )
            record["edges"] = ext.csr.num_edges
            record["partitions"] = len(ext.partitions)
            record["seconds"] = round(seconds, 3)
            record["in_ram_estimate_bytes"] = (
                48 * ext.csr.num_edges + 16 * ext.csr.num_vertices + 8
            )
        finally:
            ext.close()
    except MemoryError:
        record["skip_reason"] = (
            "MemoryError: host cannot allocate the generator input"
        )
    finally:
        if owns_dir:
            shutil.rmtree(spill, ignore_errors=True)
    peak = _maxrss_bytes()
    if record["skip_reason"] is None:
        if baseline is None or peak is None:
            record["skip_reason"] = (
                "stdlib 'resource' unavailable: RSS high-water unmeasurable"
            )
        elif not have_numpy:
            record["peak_delta_bytes"] = peak - baseline
            record["skip_reason"] = (
                "numpy unavailable: pure-python run recorded, cap unenforced"
            )
        else:
            record["peak_delta_bytes"] = peak - baseline
            record["enforced"] = True
    BENCH_JSON.write_text(
        json.dumps(record, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    lines = [f"{key}: {value}" for key, value in sorted(record.items())]
    write_report("external", lines)
    return record


def main(argv=None):
    import argparse

    from repro.cli import _parse_size

    parser = argparse.ArgumentParser(
        description="out-of-core decomposition under a capped RSS budget"
    )
    parser.add_argument("--scale", type=int, default=17,
                        help="R-MAT scale (2**scale vertices)")
    parser.add_argument("--edge-factor", type=int, default=8)
    parser.add_argument("--budget", type=_parse_size, default="256M",
                        metavar="BYTES", help="memory budget (K/M/G ok)")
    parser.add_argument("--spill-dir", default=None, metavar="DIR")
    parser.add_argument(
        "--smoke", action="store_true",
        help="tiny instance: exercises the plumbing, not the cap",
    )
    args = parser.parse_args(argv)
    scale, edge_factor = args.scale, args.edge_factor
    if args.smoke:
        scale, edge_factor = 11, 6
    record = run_external_bench(
        scale=scale, edge_factor=edge_factor,
        budget=args.budget, spill_dir=args.spill_dir,
    )
    if record["skip_reason"] is not None:
        print(f"cap unenforced: {record['skip_reason']}")
        return 0
    delta = record["peak_delta_bytes"]
    if delta > record["budget_bytes"]:
        print(
            f"FAIL: peak RSS delta {delta} exceeds budget "
            f"{record['budget_bytes']}"
        )
        return 1
    print(
        f"ok: peak RSS delta {delta} <= budget {record['budget_bytes']} "
        f"({record['edges']} edges, {record['partitions']} partitions)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())