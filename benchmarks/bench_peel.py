"""Peel executors — scalar bucket-queue vs vectorized level-synchronous.

Times Algorithm 1's peel stage (L3 only: the ``(supports, tri_edges)``
input is computed once per dataset and reused by both executors, so the
comparison isolates the executor seam) on the larger Table II sweep
datasets, asserting identical kappa maps along the way.  Two artifacts:

* ``benchmarks/results/peel_executors.txt`` — human-readable table;
* ``BENCH_peel.json`` at the repo root — the machine-readable record CI
  uploads.

Acceptance gate (ISSUE 8): the vector executor must be >= 1.5x faster
than the scalar one on the largest Table II graph *when numpy is
present* (the batched-decrement win is numpy's; the pure fallback exists
for availability, not speed).  Without numpy the speedup is recorded
with ``"enforced": false`` so the trajectory stays visible.

Run stand-alone (no pytest) with ``python benchmarks/bench_peel.py
[--smoke]``; ``--smoke`` does one timing pass instead of best-of-3.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from common import SWEEP_DATASETS, format_table, write_report

REPO_ROOT = Path(__file__).parent.parent
BENCH_JSON = REPO_ROOT / "BENCH_peel.json"

#: The largest Table II stand-in — the acceptance-gate dataset.
GATE_DATASET = SWEEP_DATASETS[-1]
#: Datasets timed: the level-synchronous executor only wins where each
#: frontier is wide enough to amortize the array passes, so the sweep
#: includes one graph below the crossover (dblp) on purpose.
BENCH_DATASETS = [SWEEP_DATASETS[3], SWEEP_DATASETS[-2], GATE_DATASET]
MIN_SPEEDUP = 1.5
REPEATS = 3


def _best_of(fn, repeats):
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return result, best


def _peel_report(get_dataset, repeats=REPEATS):
    from repro.fast import CSRGraph, run_peel, supports_and_triangles
    from repro.fast import csr as csr_mod

    has_numpy = csr_mod.np is not None
    rows = []
    json_rows = []
    for name in BENCH_DATASETS:
        graph = get_dataset(name).graph
        csr = CSRGraph.from_graph(graph)
        supports, tri_edges = supports_and_triangles(csr)
        m = csr.num_edges

        scalar, scalar_seconds = _best_of(
            lambda: run_peel(m, list(supports), tri_edges, executor="scalar"),
            repeats,
        )
        stats: dict = {}
        vector, vector_seconds = _best_of(
            lambda: run_peel(
                m, list(supports), tri_edges, executor="vector", stats=stats
            ),
            repeats,
        )
        assert vector[0] == scalar[0], f"kappa mismatch on {name}"
        speedup = scalar_seconds / max(vector_seconds, 1e-9)
        json_rows.append(
            {
                "dataset": name,
                "vertices": graph.num_vertices,
                "edges": m,
                "scalar_seconds": round(scalar_seconds, 6),
                "vector_seconds": round(vector_seconds, 6),
                "speedup": round(speedup, 2),
                "levels": stats["levels"],
                "batched_decrements": stats["batched_decrements"],
                "bound_skips": stats["bound_skips"],
            }
        )
        rows.append(
            (
                name,
                graph.num_vertices,
                m,
                f"{scalar_seconds:.4f}",
                f"{vector_seconds:.4f}",
                f"{speedup:.2f}x",
                stats["levels"],
            )
        )

    lines = format_table(
        ("dataset", "|V|", "|E|", "scalar(s)", "vector(s)", "speedup",
         "levels"),
        rows,
    )
    lines.append("")
    gate_state = "ENFORCED" if has_numpy else "recorded only (no numpy)"
    lines.append(
        f"gate: vector >= {MIN_SPEEDUP}x over scalar on {GATE_DATASET}; "
        f"numpy {'present' if has_numpy else 'absent'}, gate {gate_state}; "
        f"best-of-{repeats} wall clocks"
    )
    write_report("peel_executors", lines)

    gate_row = next(r for r in json_rows if r["dataset"] == GATE_DATASET)
    measured = gate_row["speedup"]
    BENCH_JSON.write_text(
        json.dumps(
            {
                "benchmark": "peel_executors",
                "description": (
                    "Algorithm 1 peel stage: scalar bucket-queue walk vs "
                    "vectorized level-synchronous executor "
                    f"(best-of-{repeats} wall clock, seconds)"
                ),
                "command": "PYTHONPATH=src python benchmarks/bench_peel.py",
                "acceptance": {
                    "dataset": GATE_DATASET,
                    "min_speedup": MIN_SPEEDUP,
                    "measured_speedup": measured,
                    "enforced": has_numpy,
                    "numpy": has_numpy,
                },
                "rows": json_rows,
            },
            indent=2,
        )
        + "\n",
        encoding="utf-8",
    )

    if has_numpy:
        assert measured >= MIN_SPEEDUP, (
            f"vector executor only {measured:.2f}x faster than scalar on "
            f"{GATE_DATASET}; the level-synchronous peel must stay >= "
            f"{MIN_SPEEDUP}x with numpy present"
        )
    return measured


def test_peel_executor_report(dataset_loader, benchmark):
    benchmark.pedantic(
        lambda: _peel_report(dataset_loader), rounds=1, iterations=1
    )


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="single timing pass per cell instead of best-of-3",
    )
    args = parser.parse_args(argv)

    from repro.datasets import load

    cache = {}

    def get(name):
        if name not in cache:
            cache[name] = load(name)
        return cache[name]

    measured = _peel_report(get, repeats=1 if args.smoke else REPEATS)
    print(f"\nBENCH_peel.json written; gate speedup {measured:.2f}x")
    return 0


if __name__ == "__main__":
    sys.exit(main())
