"""Figure 8 — Dual View Plots on consecutive Wiki snapshots.

The paper selects the three densest changed cliques in plot(b) — a grown
clique (green triangle, the "Astrology" page joining an astronomy clique)
and two clique merges (red rectangle, orange ellipse) — and locates their
vertices in plot(a) to explain how each structure evolved.
"""

from __future__ import annotations

import pytest

from repro.analysis import top_plateaus
from repro.datasets import (
    ASTROLOGY_CLIQUE,
    ASTRONOMY_CLIQUE,
    TOPIC_A_MERGED,
    TOPIC_B_MERGED,
)
from repro.viz import dual_view_from_snapshots, dual_view_svg, save_svg

from common import RESULTS_DIR, format_table, write_report


@pytest.fixture(scope="module")
def dual(dataset_loader):
    dataset = dataset_loader("wiki_snapshots")
    return dataset, dual_view_from_snapshots(*dataset.snapshots)


def test_bench_dual_view_construction(benchmark, dataset_loader):
    dataset = dataset_loader("wiki_snapshots")
    old, new = dataset.snapshots

    benchmark.pedantic(
        lambda: dual_view_from_snapshots(old, new), rounds=1, iterations=1
    )


def test_fig8_report(dual, benchmark):
    benchmark.pedantic(lambda: _fig8_report(dual), rounds=1, iterations=1)


def _fig8_report(dual):
    dataset, plots = dual
    events = [
        ("green triangle: clique growth", ASTRONOMY_CLIQUE + ["Astrology"], 11),
        ("red rectangle: topic-A merge", TOPIC_A_MERGED, 10),
        ("orange ellipse: topic-B merge", TOPIC_B_MERGED, 9),
    ]
    after_heights = dict(zip(plots.after.order, plots.after.heights))
    before_heights = dict(zip(plots.before.order, plots.before.heights))
    rows = []
    for label, members, expected_size in events:
        plots.select(members, label=label)
        after_peak = max(after_heights[m] for m in members)
        before_peak = max(before_heights.get(m, 0) for m in members)
        rows.append((label, len(members), before_peak, after_peak, expected_size))
    save_svg(dual_view_svg(plots), str(RESULTS_DIR / "fig8_dual_view.svg"))

    lines = format_table(
        ("event", "vertices", "peak before", "peak after", "expected size"),
        rows,
    )
    lines.append("")
    lines.append(
        "shape check vs paper Fig 8: each changed clique peaks in plot(b)"
    )
    lines.append(
        "at its merged size while plot(a) still shows the pre-merge pieces."
    )
    write_report("fig8_dual_view", lines)

    for label, members, expected_size in events:
        after_peak = max(after_heights[m] for m in members)
        assert after_peak == expected_size, label


def test_fig8_top_changed_plateaus_are_the_planted_events(dual, benchmark):
    benchmark.pedantic(lambda: _fig8_top_changed_plateaus_are_the_planted_events(dual), rounds=1, iterations=1)


def _fig8_top_changed_plateaus_are_the_planted_events(dual):
    dataset, plots = dual
    plateaus = top_plateaus(plots.after, 5, min_height=6)
    plateau_vertices = set()
    for plateau in plateaus:
        plateau_vertices |= set(plateau.vertices)
    for members in (ASTRONOMY_CLIQUE, TOPIC_A_MERGED, TOPIC_B_MERGED):
        overlap = len(set(members) & plateau_vertices)
        assert overlap >= len(members) - 2, members


def test_fig8_astrology_story(dual, benchmark):
    benchmark.pedantic(lambda: _fig8_astrology_story(dual), rounds=1, iterations=1)


def _fig8_astrology_story(dual):
    """Drill-down of Fig 8(c): before, Astrology sits in a 5-clique and the
    astronomy articles in a 10-clique; after, they form one 11-clique."""
    dataset, plots = dual
    before, after = dataset.snapshots
    from repro.analysis import clique_report

    assert clique_report(before, ASTROLOGY_CLIQUE).is_clique
    assert clique_report(before, ASTRONOMY_CLIQUE).is_clique
    assert not clique_report(before, ASTRONOMY_CLIQUE + ["Astrology"]).is_clique
    assert clique_report(after, ASTRONOMY_CLIQUE + ["Astrology"]).is_clique
