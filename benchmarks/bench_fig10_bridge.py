"""Figure 10 — Bridge Cliques in DBLP 2003 -> 2004.

The paper's first major bridge clique merges the data-streams group
(Srivastava, Cormode, Muthukrishnan, Korn) with the networking group
(Johnson, Spatscheck) — six authors who co-authored "Holistic UDAFs at
Streaming Speeds" in 2004.
"""

from __future__ import annotations

import pytest

from repro.datasets import (
    BRIDGE_GROUP_NETWORK,
    BRIDGE_GROUP_STREAMS,
    snapshot_pair,
)
from repro.templates import BRIDGE, detect_on_snapshots
from repro.viz import density_plot_svg, save_svg

from common import RESULTS_DIR, format_table, write_report

MERGED_AUTHORS = set(BRIDGE_GROUP_STREAMS + BRIDGE_GROUP_NETWORK)


@pytest.fixture(scope="module")
def detection(dataset_loader):
    dataset = dataset_loader("dblp")
    old, new = snapshot_pair(dataset, "2003", "2004")
    return detect_on_snapshots(old, new, BRIDGE)


def test_bench_bridge_detection(benchmark, dataset_loader):
    dataset = dataset_loader("dblp")
    old, new = snapshot_pair(dataset, "2003", "2004")
    benchmark.pedantic(
        lambda: detect_on_snapshots(old, new, BRIDGE), rounds=1, iterations=1
    )


def test_fig10_report(detection, dataset_loader, benchmark):
    benchmark.pedantic(lambda: _fig10_report(detection, dataset_loader), rounds=1, iterations=1)


def _fig10_report(detection, dataset_loader):
    rows = []
    planted_rank = None
    for index, (kappa, vertices) in enumerate(detection.densest_cliques()):
        if index >= 8:
            break
        is_planted = MERGED_AUTHORS <= vertices
        if is_planted and planted_rank is None:
            planted_rank = index + 1
        rows.append(
            (
                index + 1,
                kappa + 2,
                "<- planted merge" if is_planted else "",
                ", ".join(sorted(vertices)[:4]) + ", ...",
            )
        )
    plot = detection.plot(title="Bridge Cliques, DBLP 2003->2004")
    save_svg(density_plot_svg(plot), str(RESULTS_DIR / "fig10_bridge.svg"))

    lines = format_table(("rank", "~clique size", "planted?", "members"), rows)
    lines.append("")
    lines.append(
        "shape check vs paper Fig 10: a 6-vertex bridge clique merging the"
    )
    lines.append("data-streams and networking groups is a top-ranked pattern.")
    write_report("fig10_bridge", lines)

    assert planted_rank is not None, "planted bridge clique not detected"
    assert planted_rank <= 3

    # The two groups really were disconnected in 2003.
    dataset = dataset_loader("dblp")
    old, _ = snapshot_pair(dataset, "2003", "2004")
    for u in BRIDGE_GROUP_STREAMS:
        for v in BRIDGE_GROUP_NETWORK:
            assert not old.has_edge(u, v)
