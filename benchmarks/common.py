"""Shared infrastructure for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures.  Besides
the pytest-benchmark timings, each bench writes a human-readable report
(the paper-style rows) under ``benchmarks/results/`` so EXPERIMENTS.md can
reference concrete numbers.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Callable, Iterable, List, Sequence, Tuple

RESULTS_DIR = Path(__file__).parent / "results"

#: Datasets used in Table II / Table III sweeps, smallest first.  CSV and
#: the DN-Graph variants are only run on the prefix (the paper could not
#: run them on its largest graphs either).
SWEEP_DATASETS = [
    "synthetic",
    "stocks",
    "ppi",
    "dblp",
    "astro",
    "epinions",
    "amazon",
    "wiki",
    "flickr",
    "livejournal",
]
CSV_CAPABLE = {"synthetic", "stocks", "ppi", "dblp"}
DNGRAPH_CAPABLE = {"synthetic", "stocks", "ppi", "dblp", "astro", "epinions"}
#: The five largest, as in Table III.
UPDATE_DATASETS = ["astro", "epinions", "amazon", "wiki", "flickr", "livejournal"]


def write_report(name: str, lines: Iterable[str]) -> Path:
    """Write (and echo) a report file; returns its path."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    text = "\n".join(lines)
    path.write_text(text + "\n", encoding="utf-8")
    print(f"\n--- {name} ---")
    print(text)
    return path


def timed(fn: Callable[[], object]) -> Tuple[object, float]:
    """Run ``fn`` once, returning (result, seconds)."""
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> List[str]:
    """Simple fixed-width table formatting for the report files."""
    columns = [
        [str(h)] + [str(row[i]) for row in rows] for i, h in enumerate(headers)
    ]
    widths = [max(len(cell) for cell in col) for col in columns]
    lines = []
    header = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header)
    lines.append("-" * len(header))
    for row in rows:
        lines.append(
            "  ".join(str(cell).ljust(w) for cell, w in zip(row, widths))
        )
    return lines
