"""Section VI (Claim 3) — kappa(e) equals valid lambda(e).

The paper proves the DN-Graph iterative estimators converge to exactly the
Triangle K-Core numbers and attributes their cost to the number of
iterations (66 for Flickr in the original).  This bench asserts equality
on every capable dataset and records the iteration counts that explain
Table II's gap.
"""

from __future__ import annotations

import pytest

from repro.baselines import bitridn, is_valid_lambda, tridn
from repro.core import triangle_kcore_decomposition

from common import DNGRAPH_CAPABLE, format_table, write_report


@pytest.mark.parametrize("name", sorted(DNGRAPH_CAPABLE))
def test_bench_tridn(benchmark, dataset_loader, name):
    graph = dataset_loader(name).graph
    benchmark.pedantic(lambda: tridn(graph), rounds=1, iterations=1)


def test_claim3_report(dataset_loader, benchmark):
    benchmark.pedantic(lambda: _claim3_report(dataset_loader), rounds=1, iterations=1)


def _claim3_report(dataset_loader):
    rows = []
    for name in sorted(DNGRAPH_CAPABLE):
        graph = dataset_loader(name).graph
        kappa = triangle_kcore_decomposition(graph).kappa
        tridn_result = tridn(graph)
        bitridn_result = bitridn(graph)
        assert tridn_result.lambda_ == kappa, name
        assert bitridn_result.lambda_ == kappa, name
        assert is_valid_lambda(graph, kappa), name
        rows.append(
            (
                name,
                graph.num_edges,
                tridn_result.iterations,
                tridn_result.updates,
                bitridn_result.iterations,
                bitridn_result.updates,
            )
        )
    lines = format_table(
        (
            "dataset", "|E|", "TriDN sweeps", "TriDN updates",
            "BiTriDN rounds", "BiTriDN updates",
        ),
        rows,
    )
    lines.append("")
    lines.append(
        "shape check vs paper SVI: both DN-Graph variants converge to"
    )
    lines.append(
        "exactly kappa(e) on every dataset; BiTriDN needs fewer edge "
        "updates than TriDN but both repeat triangle work the one-shot "
        "peeling avoids."
    )
    write_report("claim3_dngraph", lines)
