"""Table I — dataset inventory.

Regenerates the paper's dataset table with our synthetic stand-ins next to
the original sizes, plus the structural statistics that justify each
substitution (triangle count, clustering, degeneracy).
"""

from __future__ import annotations

import pytest

from repro.analysis import graph_stats

from common import SWEEP_DATASETS, format_table, write_report


def test_table1_report(dataset_loader, benchmark):
    benchmark.pedantic(lambda: _table1_report(dataset_loader), rounds=1, iterations=1)


def _table1_report(dataset_loader):
    """Emit the Table I analogue (sizes + shape statistics)."""
    rows = []
    for name in SWEEP_DATASETS + ["wiki_snapshots"]:
        dataset = dataset_loader(name)
        stats = graph_stats(dataset.graph)
        rows.append(
            (
                name,
                stats.vertices,
                stats.edges,
                dataset.paper_vertices,
                dataset.paper_edges,
                stats.triangles,
                f"{stats.transitivity:.3f}",
                stats.degeneracy,
            )
        )
    lines = format_table(
        (
            "dataset", "ours |V|", "ours |E|", "paper |V|", "paper |E|",
            "triangles", "transitivity", "degeneracy",
        ),
        rows,
    )
    write_report("table1_datasets", lines)
    assert len(rows) == 11


@pytest.mark.parametrize("name", ["synthetic", "stocks", "ppi", "dblp"])
def test_bench_dataset_generation(benchmark, name):
    """Timing: deterministic dataset generation stays cheap."""
    from repro.datasets import load

    benchmark.pedantic(lambda: load(name), rounds=1, iterations=1)
