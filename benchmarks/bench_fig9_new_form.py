"""Figure 9 — New Form Cliques in DBLP 2003 -> 2004.

The paper's densest New Form clique is the six authors (Studer, Aberer,
Illarramendi, Kashyap, Staab, De Santis) who first collaborated in 2004.
"""

from __future__ import annotations

import pytest

from repro.datasets import NEW_FORM_AUTHORS, snapshot_pair
from repro.templates import NEW_FORM, detect_on_snapshots
from repro.viz import density_plot_svg, save_svg

from common import RESULTS_DIR, format_table, write_report


@pytest.fixture(scope="module")
def detection(dataset_loader):
    dataset = dataset_loader("dblp")
    old, new = snapshot_pair(dataset, "2003", "2004")
    return detect_on_snapshots(old, new, NEW_FORM)


def test_bench_new_form_detection(benchmark, dataset_loader):
    dataset = dataset_loader("dblp")
    old, new = snapshot_pair(dataset, "2003", "2004")
    benchmark.pedantic(
        lambda: detect_on_snapshots(old, new, NEW_FORM), rounds=1, iterations=1
    )


def test_fig9_report(detection, benchmark):
    benchmark.pedantic(lambda: _fig9_report(detection), rounds=1, iterations=1)


def _fig9_report(detection):
    top = []
    for index, (kappa, vertices) in enumerate(detection.densest_cliques()):
        if index >= 5:
            break
        top.append((index + 1, kappa + 2, ", ".join(sorted(vertices)[:6])))
    plot = detection.plot(title="New Form Cliques, DBLP 2004")
    densest_vertices = next(detection.densest_cliques())[1]
    plot.add_marker(sorted(densest_vertices), label="densest new-form clique")
    save_svg(density_plot_svg(plot), str(RESULTS_DIR / "fig9_new_form.svg"))

    lines = format_table(("rank", "~clique size", "members"), top)
    lines.append("")
    lines.append(
        "shape check vs paper Fig 9: densest New Form clique is the 6-author"
    )
    lines.append("first-time collaboration.")
    write_report("fig9_new_form", lines)

    kappa, vertices = next(detection.densest_cliques())
    assert set(NEW_FORM_AUTHORS) <= vertices
    assert kappa + 2 >= 6
