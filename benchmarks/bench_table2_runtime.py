"""Table II — execution-time comparison.

The paper's headline efficiency table: Triangle K-Core (Algorithm 1) vs
CSV vs the DN-Graph variants (TriDN / BiTriDN) across the datasets.  The
paper could not run CSV / TriDN on its largest graphs (memory/time); we
mirror that by capping the expensive baselines to the smaller stand-ins.

Expected shape (paper): CSV slowest by orders of magnitude, TriDN/BiTriDN
in between (iterative), Triangle K-Core fastest on every dataset.
"""

from __future__ import annotations

import pytest

from repro.baselines import bitridn, csv_co_clique_sizes, tridn
from repro.core import triangle_kcore_decomposition

from common import (
    CSV_CAPABLE,
    DNGRAPH_CAPABLE,
    SWEEP_DATASETS,
    format_table,
    timed,
    write_report,
)

_ROWS: list[tuple] = []


@pytest.mark.parametrize("name", SWEEP_DATASETS)
def test_bench_triangle_kcore(benchmark, dataset_loader, name):
    """pytest-benchmark timing of Algorithm 1 per dataset."""
    graph = dataset_loader(name).graph
    result = benchmark.pedantic(
        lambda: triangle_kcore_decomposition(graph), rounds=1, iterations=1
    )
    assert result.max_kappa >= 0


def test_table2_report(dataset_loader, benchmark):
    benchmark.pedantic(lambda: _table2_report(dataset_loader), rounds=1, iterations=1)


def _table2_report(dataset_loader):
    """One-shot wall-clock comparison — the Table II analogue."""
    rows = []
    for name in SWEEP_DATASETS:
        graph = dataset_loader(name).graph
        result, tkc_seconds = timed(lambda: triangle_kcore_decomposition(graph))

        if name in CSV_CAPABLE:
            _, csv_seconds = timed(lambda: csv_co_clique_sizes(graph))
            csv_cell = f"{csv_seconds:.3f}"
            csv_ratio = f"{csv_seconds / max(tkc_seconds, 1e-9):.0f}x"
        else:
            csv_cell, csv_ratio = "-", "-"

        if name in DNGRAPH_CAPABLE:
            tridn_result, tridn_seconds = timed(lambda: tridn(graph))
            bitridn_result, bitridn_seconds = timed(lambda: bitridn(graph))
            assert tridn_result.lambda_ == result.kappa
            assert bitridn_result.lambda_ == result.kappa
            tridn_cell = f"{tridn_seconds:.3f}"
            bitridn_cell = f"{bitridn_seconds:.3f}"
        else:
            tridn_cell, bitridn_cell = "-", "-"

        rows.append(
            (
                name,
                graph.num_edges,
                f"{tkc_seconds:.3f}",
                tridn_cell,
                bitridn_cell,
                csv_cell,
                csv_ratio,
            )
        )
    lines = format_table(
        (
            "dataset", "|E|", "TriangleKCore(s)", "TriDN(s)", "BiTriDN(s)",
            "CSV(s)", "CSV/TKC",
        ),
        rows,
    )
    lines.append("")
    lines.append(
        "shape check vs paper Table II: Triangle K-Core fastest everywhere;"
    )
    lines.append("CSV and the DN-Graph variants slower by large factors;")
    lines.append("the expensive baselines do not run on the largest graphs.")
    write_report("table2_runtime", lines)

    # Assert the paper's ordering where all three ran.  Per-dataset wall
    # clocks at laptop scale can sit within measurement noise of each
    # other, so individual rows get a small tolerance and the aggregate
    # must show a clear gap.
    csv_total = tkc_csv_total = tridn_total = tkc_dn_total = 0.0
    for row in rows:
        name, _, tkc, tridn_cell, bitridn_cell, csv_cell, _ = row
        if csv_cell != "-":
            assert float(csv_cell) >= 0.8 * float(tkc), f"CSV beat TKC on {name}"
            csv_total += float(csv_cell)
            tkc_csv_total += float(tkc)
        if tridn_cell != "-":
            assert float(tridn_cell) >= 0.8 * float(tkc), f"TriDN beat TKC on {name}"
            tridn_total += float(tridn_cell)
            tkc_dn_total += float(tkc)
    assert csv_total > 2.0 * tkc_csv_total, "CSV not clearly slower overall"
    assert tridn_total > 1.5 * tkc_dn_total, "TriDN not clearly slower overall"
