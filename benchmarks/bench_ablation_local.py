"""Ablation — local kappa bounds vs full decomposition.

Quantifies the "probing" use case: certified per-edge bounds from the
edge's neighborhood only.  Reports tightness (how often lower == upper ==
exact) and the speedup over decomposing the whole graph for one answer.
"""

from __future__ import annotations

import random
import time

from repro.core import kappa_bounds, triangle_kcore_decomposition

from common import format_table, timed, write_report

DATASET = "livejournal"
PROBES = 30


def test_bench_local_bounds(benchmark, dataset_loader):
    graph = dataset_loader(DATASET).graph
    rng = random.Random(3)
    edges = rng.sample(sorted(graph.edges(), key=repr), PROBES)

    def run():
        for u, v in edges:
            kappa_bounds(graph, u, v, radius=2, sweeps=2)

    benchmark.pedantic(run, rounds=1, iterations=1)


def test_ablation_local_report(dataset_loader, benchmark):
    benchmark.pedantic(
        lambda: _ablation_local_report(dataset_loader), rounds=1, iterations=1
    )


def _ablation_local_report(dataset_loader):
    graph = dataset_loader(DATASET).graph
    result, full_seconds = timed(lambda: triangle_kcore_decomposition(graph))
    rng = random.Random(3)
    edges = rng.sample(sorted(graph.edges(), key=repr), PROBES)

    rows = []
    for budget in (1, 2):
        exact_hits = 0
        sound = 0
        start = time.perf_counter()
        for u, v in edges:
            lo, hi = kappa_bounds(graph, u, v, radius=budget, sweeps=budget)
            true = result.kappa_of(u, v)
            if lo <= true <= hi:
                sound += 1
            if lo == hi:
                exact_hits += 1
        probe_seconds = time.perf_counter() - start
        per_probe = probe_seconds / PROBES
        rows.append(
            (
                budget,
                f"{sound}/{PROBES}",
                f"{exact_hits}/{PROBES}",
                f"{per_probe * 1e3:.2f}ms",
                f"{full_seconds / per_probe:.0f}x",
            )
        )
        assert sound == PROBES, "bounds must always bracket the truth"
    lines = format_table(
        ("radius/sweeps", "sound", "exact (lo==hi)", "per probe",
         "vs full decomposition"),
        rows,
    )
    lines.append("")
    lines.append(
        f"full decomposition of {DATASET}: {full_seconds:.2f}s; a certified "
        "per-edge answer needs only the edge's neighborhood."
    )
    lines.append(
        "note: in small-world graphs the radius-2 ball already spans much "
        "of the graph, so radius 1 is the sweet spot (and is exact on "
        "every probe here)."
    )
    write_report("ablation_local_bounds", lines)
