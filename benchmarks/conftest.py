"""Fixtures shared by the benchmark harness."""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent))

from repro.datasets import Dataset, load

_CACHE: dict[str, Dataset] = {}


@pytest.fixture(scope="session")
def dataset_loader():
    """Session-cached dataset loader (generation is deterministic)."""

    def get(name: str) -> Dataset:
        if name not in _CACHE:
            _CACHE[name] = load(name)
        return _CACHE[name]

    return get
