"""Ablation — where does incremental maintenance stop paying off?

Table III fixes churn at 1%.  This sweep varies the churn fraction to
locate the crossovers among the three write strategies — per-op
incremental repairs, the batched single affected-region pass, and a
full Algorithm 1 recompute — the measurement behind the ``auto``
strategy's churn threshold (``AUTO_RECOMPUTE_CHURN`` in
``repro.core.dynamic``).
"""

from __future__ import annotations

import time

import pytest

from repro.baselines import RecomputeBaseline
from repro.core import DynamicTriangleKCore
from repro.graph import random_edge_sample, random_non_edges

from common import format_table, write_report

FRACTIONS = (0.001, 0.01, 0.05, 0.20)
DATASET = "epinions"


@pytest.mark.parametrize("fraction", FRACTIONS)
def test_bench_update_at_churn(benchmark, dataset_loader, fraction):
    graph = dataset_loader(DATASET).graph
    removed = random_edge_sample(graph, fraction / 2, seed=5)
    added = random_non_edges(graph, len(removed), seed=6, triangle_closing=True)

    def setup():
        return (DynamicTriangleKCore(graph),), {}

    benchmark.pedantic(
        lambda maintainer: maintainer.apply(added=added, removed=removed),
        setup=setup,
        rounds=1,
        iterations=1,
    )


def test_ablation_churn_report(dataset_loader, benchmark):
    benchmark.pedantic(lambda: _ablation_churn_report(dataset_loader), rounds=1, iterations=1)


def _ablation_churn_report(dataset_loader):
    graph = dataset_loader(DATASET).graph
    rows = []
    incremental_crossover = None
    batch_crossover = None
    for fraction in FRACTIONS:
        removed = random_edge_sample(graph, fraction / 2, seed=5)
        added = random_non_edges(
            graph, len(removed), seed=6, triangle_closing=True
        )

        maintainer = DynamicTriangleKCore(graph)
        start = time.perf_counter()
        maintainer.apply(added=added, removed=removed)
        update_seconds = time.perf_counter() - start

        batched = DynamicTriangleKCore(graph)
        start = time.perf_counter()
        batched.apply(added=added, removed=removed, strategy="batch")
        batch_seconds = time.perf_counter() - start
        assert batched.kappa == maintainer.kappa

        baseline = RecomputeBaseline(graph)
        run = baseline.apply(added=added, removed=removed)
        assert maintainer.kappa == baseline.kappa

        speedup = run.seconds / max(update_seconds, 1e-9)
        batch_speedup = run.seconds / max(batch_seconds, 1e-9)
        if speedup < 1 and incremental_crossover is None:
            incremental_crossover = fraction
        if batch_speedup < 1 and batch_crossover is None:
            batch_crossover = fraction
        rows.append(
            (
                f"{fraction:.1%}",
                len(added) + len(removed),
                f"{run.seconds:.4f}",
                f"{update_seconds:.4f}",
                f"{speedup:.1f}x",
                f"{batch_seconds:.4f}",
                f"{batch_speedup:.1f}x",
            )
        )
    lines = format_table(
        (
            "churn", "edges changed", "recompute(s)",
            "per-op(s)", "x", "batch(s)", "x",
        ),
        rows,
    )
    lines.append("")

    def describe(name, crossover):
        if crossover is None:
            return f"{name}: beats recompute at every churn level swept"
        return f"{name}: loses to recompute above ~{crossover:.1%} churn"

    lines.append(describe("per-op incremental", incremental_crossover))
    lines.append(describe("batch", batch_crossover))
    lines.append(
        "shape: the paper's 1% regime is deep inside per-op territory "
        "for scattered edits; the batch path's wins are on coalesced "
        "bursty streams (see bench_batch_update), and auto's recompute "
        "tier (AUTO_RECOMPUTE_CHURN) covers everything above the "
        "crossover."
    )
    write_report("ablation_churn", lines)

    # At the paper's 1% the per-op path must win clearly; the batch
    # path must at least win in the near-static regime (0.1%), where
    # its per-cluster regions collapse to per-op size.
    one_percent = rows[1]
    assert float(one_percent[2]) > float(one_percent[3])
    near_static = rows[0]
    assert float(near_static[2]) > float(near_static[5])
