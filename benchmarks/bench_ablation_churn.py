"""Ablation — where does incremental maintenance stop paying off?

Table III fixes churn at 1%.  This sweep varies the churn fraction to
locate the crossover where re-running Algorithm 1 once beats applying many
individual incremental updates — the practical guidance a user of the
dynamic algorithm needs.
"""

from __future__ import annotations

import time

import pytest

from repro.baselines import RecomputeBaseline
from repro.core import DynamicTriangleKCore
from repro.graph import random_edge_sample, random_non_edges

from common import format_table, write_report

FRACTIONS = (0.001, 0.01, 0.05, 0.20)
DATASET = "epinions"


@pytest.mark.parametrize("fraction", FRACTIONS)
def test_bench_update_at_churn(benchmark, dataset_loader, fraction):
    graph = dataset_loader(DATASET).graph
    removed = random_edge_sample(graph, fraction / 2, seed=5)
    added = random_non_edges(graph, len(removed), seed=6, triangle_closing=True)

    def setup():
        return (DynamicTriangleKCore(graph),), {}

    benchmark.pedantic(
        lambda maintainer: maintainer.apply(added=added, removed=removed),
        setup=setup,
        rounds=1,
        iterations=1,
    )


def test_ablation_churn_report(dataset_loader, benchmark):
    benchmark.pedantic(lambda: _ablation_churn_report(dataset_loader), rounds=1, iterations=1)


def _ablation_churn_report(dataset_loader):
    graph = dataset_loader(DATASET).graph
    rows = []
    crossover = None
    for fraction in FRACTIONS:
        removed = random_edge_sample(graph, fraction / 2, seed=5)
        added = random_non_edges(
            graph, len(removed), seed=6, triangle_closing=True
        )

        maintainer = DynamicTriangleKCore(graph)
        start = time.perf_counter()
        maintainer.apply(added=added, removed=removed)
        update_seconds = time.perf_counter() - start

        baseline = RecomputeBaseline(graph)
        run = baseline.apply(added=added, removed=removed)
        assert maintainer.kappa == baseline.kappa

        speedup = run.seconds / max(update_seconds, 1e-9)
        if speedup < 1 and crossover is None:
            crossover = fraction
        rows.append(
            (
                f"{fraction:.1%}",
                len(added) + len(removed),
                f"{run.seconds:.4f}",
                f"{update_seconds:.4f}",
                f"{speedup:.1f}x",
            )
        )
    lines = format_table(
        ("churn", "edges changed", "recompute(s)", "update(s)", "speedup"),
        rows,
    )
    lines.append("")
    lines.append(
        f"crossover: {'not reached up to 20% churn' if crossover is None else f'incremental loses above ~{crossover:.1%} churn'}"
    )
    lines.append(
        "shape: the paper's 1% regime is deep inside incremental territory."
    )
    write_report("ablation_churn", lines)

    # At the paper's 1% the incremental path must win clearly.
    one_percent = rows[1]
    assert float(one_percent[2]) > float(one_percent[3])
