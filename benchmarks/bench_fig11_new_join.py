"""Figure 11 — New Join Cliques in DBLP 2000 -> 2001.

The paper's densest New Join clique: Wang, Maier and Shapiro (a 3-clique
in 2000) joined by six authors absent from DBLP 2000, forming a 9-vertex
clique around their 2001 paper.
"""

from __future__ import annotations

import pytest

from repro.datasets import (
    NEW_JOIN_JOINERS,
    NEW_JOIN_SEED_AUTHORS,
    snapshot_pair,
)
from repro.templates import NEW_JOIN, detect_on_snapshots
from repro.viz import density_plot_svg, save_svg

from common import RESULTS_DIR, format_table, write_report


@pytest.fixture(scope="module")
def detection(dataset_loader):
    dataset = dataset_loader("dblp")
    old, new = snapshot_pair(dataset, "2000", "2001")
    return detect_on_snapshots(old, new, NEW_JOIN)


def test_bench_new_join_detection(benchmark, dataset_loader):
    dataset = dataset_loader("dblp")
    old, new = snapshot_pair(dataset, "2000", "2001")
    benchmark.pedantic(
        lambda: detect_on_snapshots(old, new, NEW_JOIN), rounds=1, iterations=1
    )


def test_fig11_report(detection, dataset_loader, benchmark):
    benchmark.pedantic(lambda: _fig11_report(detection, dataset_loader), rounds=1, iterations=1)


def _fig11_report(detection, dataset_loader):
    rows = []
    for index, (kappa, vertices) in enumerate(detection.densest_cliques()):
        if index >= 5:
            break
        rows.append((index + 1, kappa + 2, ", ".join(sorted(vertices)[:5]) + "..."))
    plot = detection.plot(title="New Join Cliques, DBLP 2001")
    save_svg(density_plot_svg(plot), str(RESULTS_DIR / "fig11_new_join.svg"))

    lines = format_table(("rank", "~clique size", "members"), rows)
    lines.append("")
    lines.append(
        "shape check vs paper Fig 11: densest New Join clique has 9 vertices"
    )
    lines.append("(3 original authors + 6 first-appearance joiners).")
    write_report("fig11_new_join", lines)

    kappa, vertices = next(detection.densest_cliques())
    assert kappa + 2 == 9
    assert set(NEW_JOIN_SEED_AUTHORS + NEW_JOIN_JOINERS) <= vertices

    # The joiners really are absent from the 2000 snapshot.
    dataset = dataset_loader("dblp")
    old, _ = snapshot_pair(dataset, "2000", "2001")
    for author in NEW_JOIN_JOINERS:
        assert not old.has_vertex(author)
