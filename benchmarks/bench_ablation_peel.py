"""Ablation — Algorithm 1 implementation choices.

Two design decisions the paper highlights:

* bucket-sorted edge list (O(1) decrement, step 16) vs a binary heap;
* recomputing each edge's triangles on demand vs storing the full
  edge->triangles index (§IV-A last paragraph).

All three variants compute identical kappa values (asserted in tests);
this bench measures the cost differences on the mid-sized stand-ins.
"""

from __future__ import annotations

import pytest

from repro.core import (
    triangle_kcore_decomposition,
    triangle_kcore_heap,
    triangle_kcore_stored_triangles,
)

from common import format_table, timed, write_report

ABLATION_DATASETS = ["ppi", "astro", "epinions", "wiki"]

VARIANTS = (
    ("bucket+recompute (default)", triangle_kcore_decomposition),
    ("heap+recompute", triangle_kcore_heap),
    ("bucket+stored-triangles", triangle_kcore_stored_triangles),
)


@pytest.mark.parametrize("name", ABLATION_DATASETS)
@pytest.mark.parametrize("label,fn", VARIANTS, ids=[v[0] for v in VARIANTS])
def test_bench_peel_variant(benchmark, dataset_loader, name, label, fn):
    graph = dataset_loader(name).graph
    benchmark.pedantic(lambda: fn(graph), rounds=1, iterations=1)


def test_ablation_peel_report(dataset_loader, benchmark):
    benchmark.pedantic(lambda: _ablation_peel_report(dataset_loader), rounds=1, iterations=1)


def _ablation_peel_report(dataset_loader):
    rows = []
    for name in ABLATION_DATASETS:
        graph = dataset_loader(name).graph
        timings = {}
        kappas = {}
        for label, fn in VARIANTS:
            result, seconds = timed(lambda fn=fn: fn(graph))
            timings[label] = seconds
            kappas[label] = result.kappa
        baseline = kappas[VARIANTS[0][0]]
        assert all(kappa == baseline for kappa in kappas.values()), name
        rows.append(
            (
                name,
                graph.num_edges,
                f"{timings[VARIANTS[0][0]]:.3f}",
                f"{timings[VARIANTS[1][0]]:.3f}",
                f"{timings[VARIANTS[2][0]]:.3f}",
            )
        )
    lines = format_table(
        (
            "dataset", "|E|", "bucket+recompute(s)", "heap+recompute(s)",
            "bucket+stored(s)",
        ),
        rows,
    )
    lines.append("")
    lines.append(
        "ablation: the bucket queue avoids the heap's log factor; the"
    )
    lines.append(
        "stored-triangle index trades O(|Tri|) memory for skipping repeated"
    )
    lines.append("common-neighbor intersections (paper SIV-A last paragraph).")
    write_report("ablation_peel", lines)
