"""Read-scaling benchmark for the replicated query tier.

Boots a real multi-process cluster (``serve --role writer`` plus N
``--role replica`` children, each its own OS process with its own GIL)
and drives closed-loop read clients round-robin across the replica
ports — the read path the replication tier exists to scale.  One phase
per replica count (1, then 2); each phase seeds the same dataset,
applies one write batch through the writer (so replicas provably fold
before being measured), then measures sustained ``GET /kappa``
throughput.  Two artifacts are written:

* ``benchmarks/results/replication.txt`` — the human-readable table;
* ``BENCH_replication.json`` at the repo root — the machine-readable
  record CI uploads.

Acceptance gate: 2 replicas must deliver >= 1.5x the read throughput of
1 replica — **enforced only when the host has >= 2 CPUs**.  On a
single-core host the processes time-slice one core, so the ratio is
recorded for the trend line but cannot gate.

Run stand-alone (no pytest) with ``python benchmarks/bench_replication.py
[--smoke]``; ``--smoke`` shortens each phase for CI smoke runs.
"""

from __future__ import annotations

import argparse
import json
import os
import random
import sys
import threading
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from common import format_table, write_report

REPO_ROOT = Path(__file__).parent.parent
BENCH_JSON = REPO_ROOT / "BENCH_replication.json"

DATASET = "dblp"
SMOKE_DATASET = "karate"
REPLICA_COUNTS = (1, 2)
CLIENTS = 8
PHASE_SECONDS = 5.0
SMOKE_SECONDS = 1.5
MIN_SPEEDUP = 1.5


def _percentile_ms(samples, fraction):
    if not samples:
        return 0.0
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(fraction * len(ordered)))
    return round(ordered[index] * 1000.0, 3)


class _ReadLoop(threading.Thread):
    """One closed-loop reader pinned round-robin to one replica port."""

    def __init__(self, port, index, deadline, read_edges):
        super().__init__(name=f"repl-bench-client-{index}", daemon=True)
        self.port = port
        self.index = index
        self.deadline = deadline
        self.read_edges = read_edges
        self.reads = 0
        self.errors = 0
        self.latencies = []

    def run(self):
        from repro.service import ServiceClient, ServiceClientError

        rng = random.Random(f"replication-bench:{self.index}")
        with ServiceClient("127.0.0.1", self.port, timeout=60) as client:
            while time.perf_counter() < self.deadline:
                u, v = self.read_edges[rng.randrange(len(self.read_edges))]
                start = time.perf_counter()
                try:
                    client.kappa(u, v)
                except ServiceClientError:
                    self.errors += 1
                    continue
                self.latencies.append(time.perf_counter() - start)
                self.reads += 1


def _run_phase(dataset, replicas, seconds, read_edges):
    from repro.replication import ReplicatedCluster

    with ReplicatedCluster(dataset, replicas=replicas, with_router=False) as cluster:
        # One write through the writer, then wait for every replica to
        # fold it: the measurement only starts on provably-warm replicas.
        with cluster.writer_client() as writer:
            version = writer.edits(
                [["add", 90_000_001, 90_000_002], ["add", 90_000_002, 90_000_003]]
            ).version
        cluster.wait_converged(version)
        deadline = time.perf_counter() + seconds
        loops = [
            _ReadLoop(
                cluster.replica_ports[index % replicas],
                index,
                deadline,
                read_edges,
            )
            for index in range(CLIENTS)
        ]
        start = time.perf_counter()
        for loop in loops:
            loop.start()
        for loop in loops:
            loop.join(timeout=seconds + 120)
        elapsed = time.perf_counter() - start
    reads = sum(l.reads for l in loops)
    latencies = [s for l in loops for s in l.latencies]
    return {
        "replicas": replicas,
        "clients": CLIENTS,
        "seconds": round(elapsed, 3),
        "reads": reads,
        "errors": sum(l.errors for l in loops),
        "read_rps": round(reads / elapsed, 1),
        "read_p50_ms": _percentile_ms(latencies, 0.50),
        "read_p99_ms": _percentile_ms(latencies, 0.99),
        "replicated_version": version,
    }


def _replication_report(dataset=DATASET, phase_seconds=PHASE_SECONDS):
    from repro.datasets import load

    graph = load(dataset).graph
    read_edges = sorted(graph.edges(), key=repr)[:4000]
    phases = [
        _run_phase(dataset, replicas, phase_seconds, read_edges)
        for replicas in REPLICA_COUNTS
    ]
    base = phases[0]["read_rps"] or 1.0
    speedup = round(phases[-1]["read_rps"] / base, 2)
    cpus = os.cpu_count() or 1
    gate_enforced = cpus >= 2

    rows = [
        (
            p["replicas"],
            p["clients"],
            f"{p['seconds']:.1f}",
            p["reads"],
            p["errors"],
            f"{p['read_rps']:.0f}",
            f"{p['read_p50_ms']:.2f}",
            f"{p['read_p99_ms']:.2f}",
        )
        for p in phases
    ]
    lines = format_table(
        (
            "replicas", "clients", "secs", "reads", "errors",
            "read rps", "p50ms", "p99ms",
        ),
        rows,
    )
    lines.append("")
    lines.append(
        f"dataset {dataset}: |V|={graph.num_vertices} "
        f"|E|={graph.num_edges}; one process per component, reads "
        f"round-robin across replica ports"
    )
    lines.append(
        f"speedup {REPLICA_COUNTS[-1]} vs {REPLICA_COUNTS[0]} replica(s): "
        f"{speedup:.2f}x (gate >= {MIN_SPEEDUP:.1f}x "
        f"{'ENFORCED' if gate_enforced else f'recorded only: {cpus} CPU'})"
    )
    write_report("replication", lines)

    BENCH_JSON.write_text(
        json.dumps(
            {
                "benchmark": "replication",
                "description": (
                    "Read-scaling of the replicated tier: closed-loop "
                    "GET /kappa clients round-robin across N replica "
                    f"processes on {dataset}"
                ),
                "command": (
                    "PYTHONPATH=src python benchmarks/bench_replication.py"
                ),
                "dataset": {
                    "name": dataset,
                    "vertices": graph.num_vertices,
                    "edges": graph.num_edges,
                },
                "acceptance": {
                    "min_speedup": MIN_SPEEDUP,
                    "measured_speedup": speedup,
                    "cpu_count": cpus,
                    "gate_enforced": gate_enforced,
                },
                "phases": phases,
            },
            indent=2,
        )
        + "\n",
        encoding="utf-8",
    )

    total_errors = sum(p["errors"] for p in phases)
    assert total_errors == 0, f"{total_errors} client-visible errors"
    if gate_enforced:
        assert speedup >= MIN_SPEEDUP, (
            f"2-replica read throughput only {speedup:.2f}x the 1-replica "
            f"baseline; the tier must scale >= {MIN_SPEEDUP:.1f}x on a "
            f"{cpus}-CPU host"
        )
    return speedup, gate_enforced


def test_replication_report(benchmark):
    # Short phases and the small dataset under pytest-benchmark: `make
    # bench` regenerates the artifacts without the multi-process tax.
    benchmark.pedantic(
        lambda: _replication_report(
            dataset=SMOKE_DATASET, phase_seconds=SMOKE_SECONDS
        ),
        rounds=1,
        iterations=1,
    )


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help=f"short {SMOKE_SECONDS:.1f}s phases on {SMOKE_DATASET} "
        f"instead of {PHASE_SECONDS:.0f}s on {DATASET} (CI smoke run)",
    )
    args = parser.parse_args(argv)
    speedup, enforced = _replication_report(
        dataset=SMOKE_DATASET if args.smoke else DATASET,
        phase_seconds=SMOKE_SECONDS if args.smoke else PHASE_SECONDS,
    )
    print(
        f"\nBENCH_replication.json written; {REPLICA_COUNTS[-1]}-replica "
        f"read speedup {speedup:.2f}x "
        f"({'gate enforced' if enforced else 'single-CPU host: recorded only'})"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
