"""Table III — incremental update vs recompute.

The paper randomly adds/deletes 1% of edges on its five largest datasets
and compares the incremental Algorithm 2 against re-running Algorithm 1's
peel (steps 8-18), averaged over 5 runs.  Expected shape: the incremental
algorithm wins by one to two orders of magnitude.
"""

from __future__ import annotations

import time

import pytest

from repro.baselines import RecomputeBaseline
from repro.core import DynamicTriangleKCore
from repro.graph import random_edge_sample, random_non_edges

from common import UPDATE_DATASETS, format_table, write_report

#: Churn per dataset, matching the paper's actual "Edges Changed" column:
#: ~1% on the mid-sized graphs, ~0.1% on the two largest (Table III lists
#: 14996 of 15.5M Flickr edges and 41996 of 42.8M LiveJournal edges).
CHURN_FRACTIONS = {
    "astro": 0.01,
    "epinions": 0.01,
    "amazon": 0.01,
    "wiki": 0.01,
    "flickr": 0.001,
    "livejournal": 0.001,
}
RUNS = 5


def churn_sets(graph, seed, fraction):
    removed = random_edge_sample(graph, fraction / 2, seed=seed)
    added = random_non_edges(
        graph, len(removed), seed=seed + 1, triangle_closing=True
    )
    return added, removed


@pytest.mark.parametrize("name", UPDATE_DATASETS)
def test_bench_incremental_update(benchmark, dataset_loader, name):
    """pytest-benchmark timing of the incremental path (setup excluded)."""
    graph = dataset_loader(name).graph
    added, removed = churn_sets(graph, 7, CHURN_FRACTIONS[name])

    def setup():
        return (DynamicTriangleKCore(graph),), {}

    def run(maintainer):
        maintainer.apply(added=added, removed=removed)

    benchmark.pedantic(run, setup=setup, rounds=1, iterations=1)


def test_table3_report(dataset_loader, benchmark):
    benchmark.pedantic(lambda: _table3_report(dataset_loader), rounds=1, iterations=1)


def _table3_report(dataset_loader):
    """The Table III analogue: averaged recompute vs update times."""
    rows = []
    for name in UPDATE_DATASETS:
        graph = dataset_loader(name).graph
        recompute_total = 0.0
        update_total = 0.0
        changed = 0
        for run_index in range(RUNS):
            added, removed = churn_sets(
                graph, 100 + run_index, CHURN_FRACTIONS[name]
            )
            changed = len(added) + len(removed)

            maintainer = DynamicTriangleKCore(graph)
            start = time.perf_counter()
            maintainer.apply(added=added, removed=removed)
            update_total += time.perf_counter() - start

            baseline = RecomputeBaseline(graph)
            run = baseline.apply(added=added, removed=removed)
            recompute_total += run.seconds

            assert maintainer.kappa == baseline.kappa, name

        recompute_avg = recompute_total / RUNS
        update_avg = update_total / RUNS
        rows.append(
            (
                name,
                graph.num_edges,
                changed,
                f"{recompute_avg:.4f}",
                f"{update_avg:.4f}",
                f"{recompute_avg / max(update_avg, 1e-9):.1f}x",
            )
        )
    lines = format_table(
        (
            "dataset", "total edges", "edges changed", "recompute(s)",
            "update(s)", "speedup",
        ),
        rows,
    )
    lines.append("")
    lines.append(
        "shape check vs paper Table III: incremental update beats recompute"
    )
    lines.append(
        "on every dataset (paper factors: 54x Astro, 12x Epinions, 61x "
        "Amazon, 400x Flickr, 127x LiveJournal)."
    )
    write_report("table3_update", lines)

    for row in rows:
        assert float(row[3]) > float(row[4]), f"update slower on {row[0]}"
